//! Constant propagation: the classic *flat* (height-2) lattice per
//! variable, as used by Sagiv–Reps–Horwitz's "Precise interprocedural
//! dataflow analysis" — the related work the paper contrasts itself with
//! ("allows for infinite domains of finite height, but does not consider
//! infinite-height domains like intervals", §8).
//!
//! Including it here closes the loop: the same DAIG machinery that runs
//! interval/octagon/shape (infinite height, real widening) runs this
//! finite-height domain with widening degenerating to join, exactly as the
//! §2.3 discussion of finite-height domains predicts.
//!
//! A binding `x ↦ c` asserts that `x` currently holds *exactly* the
//! constant `c` (an integer, boolean, or `null`). Unbound variables may
//! hold anything. Abstract evaluation is constant folding with the
//! concrete semantics' trapping behavior: folding `1/0` or an overflowing
//! `+` yields `⊥` (the execution halts), not an arbitrary value.

use crate::{AbstractDomain, CallSite};
use dai_lang::interp::{ConcreteState, Value};
use dai_lang::{BinOp, Expr, Stmt, Symbol, UnOp, RETURN_VAR};
use std::collections::BTreeMap;
use std::fmt;

/// A propagated constant: the concrete scalar values of the language.
/// (Arrays and heap nodes are not propagated — they have identity and
/// value semantics that flat equality would misrepresent.)
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Const {
    /// An integer constant.
    Int(i64),
    /// A boolean constant.
    Bool(bool),
    /// The `null` reference.
    Null,
}

impl fmt::Display for Const {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Const::Int(n) => write!(f, "{n}"),
            Const::Bool(b) => write!(f, "{b}"),
            Const::Null => write!(f, "null"),
        }
    }
}

/// Result of abstractly evaluating an expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CVal {
    /// Evaluation traps (no value).
    Bot,
    /// Exactly this constant.
    Known(Const),
    /// Not a single known constant.
    Unknown,
}

/// The constant-propagation domain: `⊥` or an environment of constant
/// bindings.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConstDomain {
    /// Unreachable.
    Bottom,
    /// Reachable with the given constant bindings.
    Env(BTreeMap<Symbol, Const>),
}

impl ConstDomain {
    /// The unconstrained state (no bindings).
    pub fn top() -> ConstDomain {
        ConstDomain::Env(BTreeMap::new())
    }

    /// A state from explicit bindings.
    pub fn from_bindings(bindings: impl IntoIterator<Item = (Symbol, Const)>) -> ConstDomain {
        ConstDomain::Env(bindings.into_iter().collect())
    }

    /// The constant bound to `var`, if any.
    pub fn const_of(&self, var: &str) -> Option<Const> {
        match self {
            ConstDomain::Bottom => None,
            ConstDomain::Env(env) => env.get(&Symbol::new(var)).copied(),
        }
    }

    fn with_binding(&self, var: &Symbol, v: CVal) -> ConstDomain {
        let ConstDomain::Env(env) = self else {
            return ConstDomain::Bottom;
        };
        let mut env = env.clone();
        match v {
            CVal::Bot => return ConstDomain::Bottom,
            CVal::Known(c) => {
                env.insert(var.clone(), c);
            }
            CVal::Unknown => {
                env.remove(var);
            }
        }
        ConstDomain::Env(env)
    }

    /// Refines this state by assuming `cond` evaluates to `expected`.
    fn refine(&self, cond: &Expr, expected: bool) -> ConstDomain {
        let ConstDomain::Env(env) = self else {
            return ConstDomain::Bottom;
        };
        match eval_const(env, cond) {
            CVal::Bot => return ConstDomain::Bottom,
            CVal::Known(Const::Bool(b)) if b != expected => return ConstDomain::Bottom,
            CVal::Known(Const::Bool(_)) => return self.clone(),
            CVal::Known(_) => return ConstDomain::Bottom, // guard on non-boolean traps
            CVal::Unknown => {}
        }
        match cond {
            Expr::Unary(UnOp::Not, inner) => self.refine(inner, !expected),
            Expr::Binary(BinOp::And, l, r) if expected => {
                let first = self.refine(l, true);
                if first.is_bottom() {
                    first
                } else {
                    first.refine(r, true)
                }
            }
            Expr::Binary(BinOp::Or, l, r) if !expected => {
                let first = self.refine(l, false);
                if first.is_bottom() {
                    first
                } else {
                    first.refine(r, false)
                }
            }
            // Equality against a constant pins the variable (the only
            // comparison a flat lattice can exploit).
            Expr::Binary(BinOp::Eq, l, r) if expected => self.refine_eq(l, r).refine_eq(r, l),
            Expr::Binary(BinOp::Ne, l, r) if !expected => self.refine_eq(l, r).refine_eq(r, l),
            _ => self.clone(),
        }
    }

    /// Refines `l == r` (taken true) when `l` is a variable and `r` folds
    /// to a constant.
    fn refine_eq(&self, l: &Expr, r: &Expr) -> ConstDomain {
        let ConstDomain::Env(env) = self else {
            return ConstDomain::Bottom;
        };
        let Expr::Var(x) = l else { return self.clone() };
        match eval_const(env, r) {
            CVal::Known(c) => self.with_binding(x, CVal::Known(c)),
            _ => self.clone(),
        }
    }
}

impl fmt::Display for ConstDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConstDomain::Bottom => write!(f, "⊥"),
            ConstDomain::Env(env) => {
                write!(f, "{{")?;
                for (i, (k, v)) in env.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
        }
    }
}

impl crate::compile::CompileTransfer for ConstDomain {
    fn stage(stmt: &Stmt) -> Option<crate::compile::CompiledTransfer<Self>> {
        use crate::compile::{CompiledTransfer, TransferShape};
        match stmt {
            Stmt::Skip | Stmt::Print(_) => Some(CompiledTransfer::new(
                TransferShape::Identity,
                |pre: &ConstDomain| match pre {
                    ConstDomain::Env(_) => pre.clone(),
                    ConstDomain::Bottom => ConstDomain::Bottom,
                },
            )),
            Stmt::Assign(x, e) => {
                let x = x.clone();
                match e {
                    Expr::Int(_) | Expr::Bool(_) | Expr::Null => {
                        let v = eval_const(&BTreeMap::new(), e);
                        Some(CompiledTransfer::new(
                            TransferShape::ConstAssign,
                            move |pre: &ConstDomain| match pre {
                                ConstDomain::Env(_) => pre.with_binding(&x, v),
                                ConstDomain::Bottom => ConstDomain::Bottom,
                            },
                        ))
                    }
                    _ => {
                        let shape = if matches!(e, Expr::Var(_)) {
                            TransferShape::CopyAssign
                        } else {
                            TransferShape::Assign
                        };
                        let e = e.clone();
                        Some(CompiledTransfer::new(shape, move |pre: &ConstDomain| {
                            let ConstDomain::Env(env) = pre else {
                                return ConstDomain::Bottom;
                            };
                            pre.with_binding(&x, eval_const(env, &e))
                        }))
                    }
                }
            }
            Stmt::ArrayWrite(a, i, e) => {
                let a = a.clone();
                let i = i.clone();
                let e = e.clone();
                Some(CompiledTransfer::new(
                    TransferShape::HeapWrite,
                    move |pre: &ConstDomain| {
                        let ConstDomain::Env(env) = pre else {
                            return ConstDomain::Bottom;
                        };
                        if env.contains_key(&a) {
                            return ConstDomain::Bottom;
                        }
                        match (eval_const(env, &i), eval_const(env, &e)) {
                            (CVal::Bot, _) | (_, CVal::Bot) => ConstDomain::Bottom,
                            (CVal::Known(Const::Int(n)), _) if n < 0 => ConstDomain::Bottom,
                            (CVal::Known(c), _) if !matches!(c, Const::Int(_)) => {
                                ConstDomain::Bottom
                            }
                            _ => pre.clone(),
                        }
                    },
                ))
            }
            Stmt::FieldWrite(x, _, _) => {
                let x = x.clone();
                Some(CompiledTransfer::new(
                    TransferShape::HeapWrite,
                    move |pre: &ConstDomain| {
                        let ConstDomain::Env(env) = pre else {
                            return ConstDomain::Bottom;
                        };
                        if env.contains_key(&x) {
                            return ConstDomain::Bottom;
                        }
                        pre.clone()
                    },
                ))
            }
            Stmt::Assume(e) => {
                let e = e.clone();
                Some(CompiledTransfer::new(
                    TransferShape::Assume,
                    move |pre: &ConstDomain| match pre {
                        ConstDomain::Env(_) => pre.refine(&e, true),
                        ConstDomain::Bottom => ConstDomain::Bottom,
                    },
                ))
            }
            Stmt::Call { .. } => None,
        }
    }
}

/// Constant-folds `expr` in `env`, trapping exactly when the concrete
/// semantics would (overflow, division by zero, type confusion).
fn eval_const(env: &BTreeMap<Symbol, Const>, expr: &Expr) -> CVal {
    match expr {
        Expr::Int(n) => CVal::Known(Const::Int(*n)),
        Expr::Bool(b) => CVal::Known(Const::Bool(*b)),
        Expr::Null => CVal::Known(Const::Null),
        Expr::Var(x) => env.get(x).map(|c| CVal::Known(*c)).unwrap_or(CVal::Unknown),
        Expr::Unary(UnOp::Neg, e) => match eval_const(env, e) {
            CVal::Known(Const::Int(n)) => n
                .checked_neg()
                .map(|m| CVal::Known(Const::Int(m)))
                .unwrap_or(CVal::Bot),
            CVal::Known(_) => CVal::Bot, // negating a non-integer traps
            other => other,
        },
        Expr::Unary(UnOp::Not, e) => match eval_const(env, e) {
            CVal::Known(Const::Bool(b)) => CVal::Known(Const::Bool(!b)),
            CVal::Known(_) => CVal::Bot,
            other => other,
        },
        Expr::Binary(op, l, r) => {
            let (a, b) = (eval_const(env, l), eval_const(env, r));
            match (a, b) {
                (CVal::Bot, _) | (_, CVal::Bot) => CVal::Bot,
                (CVal::Known(ca), CVal::Known(cb)) => fold_binop(*op, ca, cb),
                _ => CVal::Unknown,
            }
        }
        // Arrays and heap values are not propagated.
        Expr::ArrayLit(_)
        | Expr::ArrayRead(..)
        | Expr::ArrayLen(_)
        | Expr::Field(..)
        | Expr::AllocNode => CVal::Unknown,
    }
}

/// Folds a binary operation on two scalar constants, mirroring the
/// concrete semantics (including its traps).
fn fold_binop(op: BinOp, a: Const, b: Const) -> CVal {
    use BinOp::*;
    use Const::*;
    match (op, a, b) {
        (Add, Int(x), Int(y)) => int_or_trap(x.checked_add(y)),
        (Sub, Int(x), Int(y)) => int_or_trap(x.checked_sub(y)),
        (Mul, Int(x), Int(y)) => int_or_trap(x.checked_mul(y)),
        (Div, Int(_), Int(0)) | (Mod, Int(_), Int(0)) => CVal::Bot,
        (Div, Int(x), Int(y)) => int_or_trap(x.checked_div(y)),
        (Mod, Int(x), Int(y)) => int_or_trap(x.checked_rem(y)),
        (Lt, Int(x), Int(y)) => CVal::Known(Bool(x < y)),
        (Le, Int(x), Int(y)) => CVal::Known(Bool(x <= y)),
        (Gt, Int(x), Int(y)) => CVal::Known(Bool(x > y)),
        (Ge, Int(x), Int(y)) => CVal::Known(Bool(x >= y)),
        (Eq, Int(x), Int(y)) => CVal::Known(Bool(x == y)),
        (Ne, Int(x), Int(y)) => CVal::Known(Bool(x != y)),
        (Eq, Bool(x), Bool(y)) => CVal::Known(Bool(x == y)),
        (Ne, Bool(x), Bool(y)) => CVal::Known(Bool(x != y)),
        (Eq, Null, Null) => CVal::Known(Bool(true)),
        (Ne, Null, Null) => CVal::Known(Bool(false)),
        (And, Bool(x), Bool(y)) => CVal::Known(Bool(x && y)),
        (Or, Bool(x), Bool(y)) => CVal::Known(Bool(x || y)),
        // Everything else (arithmetic on booleans, ordering null, mixed
        // scalar families) traps in the concrete semantics.
        _ => CVal::Bot,
    }
}

fn int_or_trap(v: Option<i64>) -> CVal {
    v.map(|n| CVal::Known(Const::Int(n))).unwrap_or(CVal::Bot)
}

impl AbstractDomain for ConstDomain {
    fn bottom() -> Self {
        ConstDomain::Bottom
    }

    fn is_bottom(&self) -> bool {
        matches!(self, ConstDomain::Bottom)
    }

    fn entry_default(_params: &[Symbol]) -> Self {
        ConstDomain::top()
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (ConstDomain::Bottom, x) | (x, ConstDomain::Bottom) => x.clone(),
            (ConstDomain::Env(a), ConstDomain::Env(b)) => {
                // Flat join: keep only bindings equal on both sides.
                let env = a
                    .iter()
                    .filter(|(k, va)| b.get(*k) == Some(va))
                    .map(|(k, v)| (k.clone(), *v))
                    .collect();
                ConstDomain::Env(env)
            }
        }
    }

    fn widen(&self, next: &Self) -> Self {
        // Flat lattice: chains have length ≤ 2 per variable, join suffices.
        self.join(next)
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (ConstDomain::Bottom, _) => true,
            (_, ConstDomain::Bottom) => false,
            (ConstDomain::Env(a), ConstDomain::Env(b)) => {
                b.iter().all(|(k, vb)| a.get(k) == Some(vb))
            }
        }
    }

    fn transfer(&self, stmt: &Stmt) -> Self {
        let ConstDomain::Env(env) = self else {
            return ConstDomain::Bottom;
        };
        match stmt {
            Stmt::Skip | Stmt::Print(_) => self.clone(),
            Stmt::Assign(x, e) => self.with_binding(x, eval_const(env, e)),
            Stmt::ArrayWrite(a, i, e) => {
                // Writing into a scalar constant traps; a genuine array is
                // untracked, so only the index/value traps matter.
                if env.contains_key(a) {
                    return ConstDomain::Bottom;
                }
                match (eval_const(env, i), eval_const(env, e)) {
                    (CVal::Bot, _) | (_, CVal::Bot) => ConstDomain::Bottom,
                    (CVal::Known(Const::Int(n)), _) if n < 0 => ConstDomain::Bottom,
                    (CVal::Known(c), _) if !matches!(c, Const::Int(_)) => {
                        ConstDomain::Bottom // non-integer index traps
                    }
                    _ => self.clone(),
                }
            }
            Stmt::FieldWrite(x, _, _) => {
                if env.contains_key(x) {
                    return ConstDomain::Bottom; // scalars are not nodes
                }
                self.clone()
            }
            Stmt::Assume(e) => self.refine(e, true),
            Stmt::Call { lhs, .. } => match lhs {
                Some(x) => self.with_binding(x, CVal::Unknown),
                None => self.clone(),
            },
        }
    }

    fn compile_transfer(stmt: &Stmt) -> Option<crate::compile::CompiledTransfer<Self>> {
        <ConstDomain as crate::compile::CompileTransfer>::stage(stmt)
    }

    fn call_entry(&self, site: CallSite<'_>, callee_params: &[Symbol]) -> Self {
        let ConstDomain::Env(env) = self else {
            return ConstDomain::Bottom;
        };
        ConstDomain::from_bindings(callee_params.iter().zip(site.args).filter_map(|(p, a)| {
            match eval_const(env, a) {
                CVal::Known(c) => Some((p.clone(), c)),
                _ => None,
            }
        }))
    }

    fn call_return(&self, site: CallSite<'_>, callee_exit: &Self) -> Self {
        if self.is_bottom() || callee_exit.is_bottom() {
            return ConstDomain::Bottom;
        }
        match site.lhs {
            Some(x) => {
                let ret = match callee_exit {
                    ConstDomain::Env(env) => env
                        .get(&Symbol::new(RETURN_VAR))
                        .map(|c| CVal::Known(*c))
                        .unwrap_or(CVal::Unknown),
                    ConstDomain::Bottom => CVal::Bot,
                };
                self.with_binding(x, ret)
            }
            None => self.clone(),
        }
    }

    fn models(&self, concrete: &ConcreteState) -> bool {
        let ConstDomain::Env(env) = self else {
            return false;
        };
        concrete.env.iter().all(|(x, v)| match env.get(x) {
            None => true,
            Some(Const::Int(n)) => matches!(v, Value::Int(m) if m == n),
            Some(Const::Bool(b)) => matches!(v, Value::Bool(c) if c == b),
            Some(Const::Null) => matches!(v, Value::Null),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_lang::parse_expr;

    fn assign(d: &ConstDomain, var: &str, e: &str) -> ConstDomain {
        d.transfer(&Stmt::Assign(var.into(), parse_expr(e).unwrap()))
    }

    #[test]
    fn constant_folding_chains() {
        let d = assign(&ConstDomain::top(), "x", "2 + 3");
        let d = assign(&d, "y", "x * x");
        let d = assign(&d, "b", "y == 25");
        assert_eq!(d.const_of("x"), Some(Const::Int(5)));
        assert_eq!(d.const_of("y"), Some(Const::Int(25)));
        assert_eq!(d.const_of("b"), Some(Const::Bool(true)));
    }

    #[test]
    fn unknown_operand_poisons_result_only() {
        let d = assign(&ConstDomain::top(), "y", "unknown + 1");
        assert_eq!(d.const_of("y"), None);
        let d = assign(&d, "z", "1 + 2");
        assert_eq!(d.const_of("z"), Some(Const::Int(3)));
    }

    #[test]
    fn trapping_folds_are_bottom() {
        // Division by a known zero halts the execution.
        assert!(assign(&ConstDomain::top(), "x", "1 / 0").is_bottom());
        assert!(assign(&ConstDomain::top(), "x", "1 % 0").is_bottom());
        // Arithmetic on booleans halts.
        assert!(assign(&ConstDomain::top(), "x", "true + 1").is_bottom());
        // Overflow halts (the concrete semantics traps rather than wraps).
        let d = assign(&ConstDomain::top(), "big", "9223372036854775807");
        assert!(assign(&d, "x", "big + 1").is_bottom());
    }

    #[test]
    fn flat_join_keeps_agreeing_bindings() {
        let a = ConstDomain::from_bindings([
            (Symbol::new("x"), Const::Int(1)),
            (Symbol::new("y"), Const::Int(7)),
        ]);
        let b = ConstDomain::from_bindings([
            (Symbol::new("x"), Const::Int(2)),
            (Symbol::new("y"), Const::Int(7)),
        ]);
        let j = a.join(&b);
        assert_eq!(j.const_of("x"), None, "disagreeing constants drop to ⊤");
        assert_eq!(j.const_of("y"), Some(Const::Int(7)));
        assert!(a.leq(&j) && b.leq(&j));
        assert_eq!(a.widen(&b), j, "flat widening is join");
    }

    #[test]
    fn assume_prunes_and_pins() {
        let d = assign(&ConstDomain::top(), "x", "4");
        // Contradicted guard: unreachable.
        assert!(d
            .transfer(&Stmt::Assume(parse_expr("x == 5").unwrap()))
            .is_bottom());
        // Consistent guard: state survives.
        let d2 = d.transfer(&Stmt::Assume(parse_expr("x == 4").unwrap()));
        assert_eq!(d2.const_of("x"), Some(Const::Int(4)));
        // Equality against a constant pins an unknown variable.
        let d3 = ConstDomain::top().transfer(&Stmt::Assume(parse_expr("u == 9").unwrap()));
        assert_eq!(d3.const_of("u"), Some(Const::Int(9)));
        // ¬(u != 9) pins too.
        let d4 = ConstDomain::top().transfer(&Stmt::Assume(parse_expr("!(u != 9)").unwrap()));
        assert_eq!(d4.const_of("u"), Some(Const::Int(9)));
    }

    #[test]
    fn null_and_bool_constants() {
        let d = assign(&ConstDomain::top(), "p", "null");
        assert_eq!(d.const_of("p"), Some(Const::Null));
        let d = assign(&d, "q", "p == null");
        assert_eq!(d.const_of("q"), Some(Const::Bool(true)));
        let d = assign(&d, "r", "!q");
        assert_eq!(d.const_of("r"), Some(Const::Bool(false)));
    }

    #[test]
    fn models_concrete_states() {
        let d = ConstDomain::from_bindings([(Symbol::new("x"), Const::Int(3))]);
        let mut c = ConcreteState::new();
        c.env.insert(Symbol::new("x"), Value::Int(3));
        assert!(d.models(&c));
        c.env.insert(Symbol::new("x"), Value::Int(4));
        assert!(!d.models(&c));
        c.env.insert(Symbol::new("x"), Value::Bool(true));
        assert!(!d.models(&c));
    }

    #[test]
    fn guard_on_non_boolean_is_unreachable() {
        let d = assign(&ConstDomain::top(), "x", "3");
        assert!(d
            .transfer(&Stmt::Assume(parse_expr("x").unwrap()))
            .is_bottom());
    }

    #[test]
    fn call_entry_and_return_propagate_constants() {
        let caller = assign(&ConstDomain::top(), "a", "11");
        let args = vec![parse_expr("a").unwrap()];
        let lhs = Symbol::new("out");
        let callee = Symbol::new("f");
        let site = CallSite {
            lhs: Some(&lhs),
            callee: &callee,
            args: &args,
            site_key: "main:e0",
        };
        let entry = caller.call_entry(site, &[Symbol::new("p")]);
        assert_eq!(entry.const_of("p"), Some(Const::Int(11)));
        let exit = ConstDomain::from_bindings([(Symbol::new(RETURN_VAR), Const::Int(99))]);
        let after = caller.call_return(site, &exit);
        assert_eq!(after.const_of("out"), Some(Const::Int(99)));
        assert_eq!(
            after.const_of("a"),
            Some(Const::Int(11)),
            "caller state framed"
        );
    }
}
