//! A separation-logic shape domain for singly-linked lists (paper §7.2).
//!
//! An abstract state is a finite disjunction of *symbolic heaps*, each a
//! triple of (paper's description):
//!
//! * a separation-logic formula over points-to (`α.next ↦ α'`) and
//!   list-segment (`lseg(α, α')`) atomic propositions,
//! * pure constraints: disequalities over symbolic addresses (equalities
//!   are applied eagerly by substitution), and
//! * an environment mapping (pointer-valued) variables to addresses.
//!
//! `lseg(α, β)` denotes a possibly-empty chain of `next` cells from `α` to
//! `β` (the Chang–Rival–Necula inductive definition specialized to lists).
//! The domain operations are the classic shape-analysis trio:
//!
//! * **materialization** — dereferencing a segment head unfolds it,
//!   case-splitting on emptiness;
//! * **canonicalization** — garbage-collect unreachable cells, fold
//!   anonymous chains back into `lseg`s, and rename addresses canonically;
//!   this bounds every heap by the number of program variables, making the
//!   set of canonical heaps finite;
//! * **widening** — join (disjunct union) followed by canonicalization,
//!   which converges because canonical heaps form a finite universe.
//!
//! Two state-level flags track analysis imprecision soundly: `err` records
//! a possible memory-safety violation (the §7.2 verification client), and
//! `top` records that the heap is unknown (e.g. a write through an
//! untracked pointer).

use crate::{AbstractDomain, CallSite};
use dai_lang::interp::{ConcreteState, NodeId, Value};
use dai_lang::{BinOp, Expr, Stmt, Symbol, UnOp, RETURN_VAR};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A symbolic address: `null` or an existentially quantified cell address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Addr {
    /// The null reference.
    Null,
    /// A symbolic address `αᵢ`.
    Sym(u32),
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Addr::Null => write!(f, "null"),
            Addr::Sym(i) => write!(f, "a{i}"),
        }
    }
}

/// A single symbolic heap (one disjunct).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymHeap {
    /// Pointer variables to addresses. Variables absent here are
    /// unconstrained (possibly non-pointer).
    pub env: BTreeMap<Symbol, Addr>,
    /// Points-to facts `α.next ↦ β` (the key owns the cell).
    pub pts: BTreeMap<Addr, Addr>,
    /// List segments `lseg(α, β)`, possibly empty.
    pub lsegs: BTreeSet<(Addr, Addr)>,
    /// Disequalities over addresses (stored with the smaller first).
    pub diseqs: BTreeSet<(Addr, Addr)>,
}

impl SymHeap {
    fn fresh_addr(&self) -> Addr {
        let mut max = 0;
        let mut bump = |a: &Addr| {
            if let Addr::Sym(i) = a {
                max = max.max(*i + 1);
            }
        };
        for a in self.env.values() {
            bump(a);
        }
        for (a, b) in &self.pts {
            bump(a);
            bump(b);
        }
        for (a, b) in &self.lsegs {
            bump(a);
            bump(b);
        }
        for (a, b) in &self.diseqs {
            bump(a);
            bump(b);
        }
        Addr::Sym(max)
    }

    fn all_addrs(&self) -> BTreeSet<Addr> {
        let mut out = BTreeSet::new();
        out.extend(self.env.values().copied());
        for (a, b) in &self.pts {
            out.insert(*a);
            out.insert(*b);
        }
        for (a, b) in &self.lsegs {
            out.insert(*a);
            out.insert(*b);
        }
        for (a, b) in &self.diseqs {
            out.insert(*a);
            out.insert(*b);
        }
        out
    }

    fn add_diseq(&mut self, a: Addr, b: Addr) {
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        if x != y {
            self.diseqs.insert((x, y));
        } else {
            // a ≠ a: mark infeasible by a reserved impossible diseq; the
            // saturation pass detects it via the equal-pair check below.
            self.diseqs.insert((x, y));
        }
    }

    fn has_diseq(&self, a: Addr, b: Addr) -> bool {
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        self.diseqs.contains(&(x, y))
    }

    /// May `a` be null in this heap?
    fn may_be_null(&self, a: Addr) -> bool {
        match a {
            Addr::Null => true,
            s => !self.has_diseq(s, Addr::Null) && !self.pts.contains_key(&s),
        }
    }

    /// Substitutes address `from` by `to` everywhere. Returns `None` when
    /// the merge makes the heap inconsistent (two points-to facts for one
    /// cell).
    fn subst(&self, from: Addr, to: Addr) -> Option<SymHeap> {
        let map = |a: Addr| if a == from { to } else { a };
        let mut out = SymHeap::default();
        for (x, a) in &self.env {
            out.env.insert(x.clone(), map(*a));
        }
        for (a, b) in &self.pts {
            let (a, b) = (map(*a), map(*b));
            if let Some(prev) = out.pts.insert(a, b) {
                if prev != b {
                    return None; // α ↦ β * α ↦ γ is unsatisfiable
                }
                // Even equal targets mean the same cell twice: unsat.
                return None;
            }
        }
        for (a, b) in &self.lsegs {
            out.lsegs.insert((map(*a), map(*b)));
        }
        for (a, b) in &self.diseqs {
            let (a, b) = (map(*a), map(*b));
            let (x, y) = if a <= b { (a, b) } else { (b, a) };
            out.diseqs.insert((x, y));
        }
        Some(out)
    }

    /// Asserts `a = b`, substituting and re-saturating. Returns all
    /// feasible resulting heaps.
    fn assert_eq(&self, a: Addr, b: Addr) -> Vec<SymHeap> {
        if a == b {
            return saturate(self.clone());
        }
        if self.has_diseq(a, b) {
            return Vec::new();
        }
        // Substitute toward null, else toward the smaller symbol.
        let (from, to) = match (a, b) {
            (Addr::Null, s) => (s, Addr::Null),
            (s, Addr::Null) => (s, Addr::Null),
            (x, y) => {
                if x < y {
                    (y, x)
                } else {
                    (x, y)
                }
            }
        };
        match self.subst(from, to) {
            Some(h) => saturate(h),
            None => Vec::new(),
        }
    }
}

/// Saturation: applies the structural consistency rules to a fixed point,
/// possibly case-splitting. Returns the feasible heaps.
fn saturate(mut h: SymHeap) -> Vec<SymHeap> {
    loop {
        // ⊥ checks.
        if h.pts.contains_key(&Addr::Null) {
            return Vec::new();
        }
        if h.diseqs.iter().any(|(a, b)| a == b) {
            return Vec::new();
        }
        // lseg(a, a) is the empty segment: drop it.
        if let Some(&seg) = h.lsegs.iter().find(|(a, b)| a == b) {
            h.lsegs.remove(&seg);
            continue;
        }
        // lseg(null, b): null owns no cell, so the segment is empty: b = null.
        if let Some(&(a, b)) = h.lsegs.iter().find(|(a, _)| *a == Addr::Null) {
            h.lsegs.remove(&(a, b));
            let mut out = Vec::new();
            for h2 in h.assert_eq(b, Addr::Null) {
                out.extend(saturate(h2));
            }
            return out;
        }
        // pts[a] and lseg(a, c) coexist only if the segment is empty.
        let clash = h.lsegs.iter().find(|(a, _)| h.pts.contains_key(a)).copied();
        if let Some((a, c)) = clash {
            h.lsegs.remove(&(a, c));
            let mut out = Vec::new();
            for h2 in h.assert_eq(a, c) {
                out.extend(saturate(h2));
            }
            return out;
        }
        // Two segments from the same head: one of them must be empty.
        let heads: Vec<Addr> = h.lsegs.iter().map(|(a, _)| *a).collect();
        if let Some(dup) = heads
            .iter()
            .find(|a| heads.iter().filter(|x| x == a).count() > 1)
        {
            let segs: Vec<(Addr, Addr)> =
                h.lsegs.iter().filter(|(a, _)| a == dup).copied().collect();
            let mut out = Vec::new();
            for &(a, b) in &segs {
                let mut h2 = h.clone();
                h2.lsegs.remove(&(a, b));
                for h3 in h2.assert_eq(a, b) {
                    out.extend(saturate(h3));
                }
            }
            return out;
        }
        // A cell owner is definitely non-null.
        let owners: Vec<Addr> = h.pts.keys().copied().collect();
        let mut changed = false;
        for a in owners {
            if let Addr::Sym(_) = a {
                if !h.has_diseq(a, Addr::Null) {
                    h.add_diseq(a, Addr::Null);
                    changed = true;
                }
            }
        }
        if changed {
            continue;
        }
        return vec![h];
    }
}

/// Canonicalization: GC, fold, and rename (see module docs).
fn canonicalize(h: SymHeap) -> Vec<SymHeap> {
    saturate(h).into_iter().flat_map(canon_one).collect()
}

/// Garbage collection: drops facts about addresses unreachable from the
/// environment (sound weakening under the intuitionistic reading).
fn gc(h: &mut SymHeap) {
    let mut reach: BTreeSet<Addr> = h.env.values().copied().collect();
    reach.insert(Addr::Null);
    loop {
        let mut grew = false;
        for (a, b) in h.pts.iter() {
            if reach.contains(a) && reach.insert(*b) {
                grew = true;
            }
        }
        for (a, b) in h.lsegs.iter() {
            if reach.contains(a) && reach.insert(*b) {
                grew = true;
            }
        }
        if !grew {
            break;
        }
    }
    h.pts.retain(|a, _| reach.contains(a));
    h.lsegs.retain(|(a, _)| reach.contains(a));
    h.diseqs
        .retain(|(a, b)| reach.contains(a) && reach.contains(b));
}

fn canon_one(mut h: SymHeap) -> Vec<SymHeap> {
    gc(&mut h);

    // --- Generalize: every points-to is a (non-empty, hence ≥ weaker)
    // list segment. Saturation has already recorded the owner's
    // non-nullness as a disequality, so the only information lost is cell
    // adjacency — which materialization can re-split on demand. This is
    // the Chang–Rival–Necula-style canonicalization step that makes the
    // set of canonical heaps finite *and small*, and it is what lets the
    // append loop converge after a single demanded unrolling (§7.2).
    let pts = std::mem::take(&mut h.pts);
    for (a, b) in pts {
        h.lsegs.insert((a, b));
    }

    // --- Fold anonymous interior cells into segments.
    let named: BTreeSet<Addr> = h.env.values().copied().collect();
    loop {
        let mut folded = false;
        let candidates: Vec<Addr> = h
            .all_addrs()
            .into_iter()
            .filter(|a| matches!(a, Addr::Sym(_)) && !named.contains(a))
            .collect();
        for m in candidates {
            let in_segs: Vec<(Addr, Addr)> =
                h.lsegs.iter().filter(|(_, b)| *b == m).copied().collect();
            let out_segs: Vec<(Addr, Addr)> =
                h.lsegs.iter().filter(|(a, _)| *a == m).copied().collect();
            if in_segs.len() != 1 || out_segs.len() != 1 {
                continue;
            }
            let (src, _) = in_segs[0];
            let (_, dst) = out_segs[0];
            if src == m || dst == m {
                continue; // self loop; leave for saturation
            }
            h.lsegs.remove(&in_segs[0]);
            h.lsegs.remove(&out_segs[0]);
            h.diseqs.retain(|(a, b)| *a != m && *b != m);
            h.lsegs.insert((src, dst));
            folded = true;
            break;
        }
        if !folded {
            break;
        }
    }

    // Folding may have produced lseg(a, a) or duplicate heads: re-saturate.
    let sat = saturate(h);

    // --- Canonical renaming by deterministic traversal from sorted roots.
    sat.into_iter()
        .map(|h| {
            let mut order: Vec<Addr> = Vec::new();
            let mut seen: BTreeSet<Addr> = BTreeSet::new();
            seen.insert(Addr::Null);
            let mut queue: Vec<Addr> = Vec::new();
            for a in h.env.values() {
                if seen.insert(*a) {
                    queue.push(*a);
                }
            }
            // env is a BTreeMap: root order is deterministic (sorted vars).
            let mut i = 0;
            while i < queue.len() {
                let a = queue[i];
                i += 1;
                order.push(a);
                let mut succs: Vec<Addr> = Vec::new();
                if let Some(b) = h.pts.get(&a) {
                    succs.push(*b);
                }
                for (s, b) in &h.lsegs {
                    if *s == a {
                        succs.push(*b);
                    }
                }
                for b in succs {
                    if seen.insert(b) {
                        queue.push(b);
                    }
                }
            }
            let rename: BTreeMap<Addr, Addr> = order
                .iter()
                .enumerate()
                .map(|(i, a)| (*a, Addr::Sym(i as u32)))
                .collect();
            let map = |a: Addr| *rename.get(&a).unwrap_or(&a);
            let mut out = SymHeap::default();
            for (x, a) in &h.env {
                out.env.insert(x.clone(), map(*a));
            }
            for (a, b) in &h.pts {
                out.pts.insert(map(*a), map(*b));
            }
            for (a, b) in &h.lsegs {
                out.lsegs.insert((map(*a), map(*b)));
            }
            for (a, b) in &h.diseqs {
                let (a, b) = (map(*a), map(*b));
                let (x, y) = if a <= b { (a, b) } else { (b, a) };
                out.diseqs.insert((x, y));
            }
            out
        })
        .collect()
}

/// Does `strong ⊢ weak` hold — is every concrete heap modelled by `strong`
/// also modelled by `weak`? Sound and incomplete: a `true` answer is
/// justified by exhibiting an address mapping `φ` under which each of
/// `weak`'s segments is covered by a chain of *disjoint* `strong` facts
/// (each consumed at most once), and each of `weak`'s pure constraints is
/// implied by `strong`. Used for disjunct subsumption in joins/widens.
pub fn entails(strong: &SymHeap, weak: &SymHeap) -> bool {
    let mut phi: BTreeMap<Addr, Addr> = BTreeMap::new();
    phi.insert(Addr::Null, Addr::Null);
    for (x, wa) in &weak.env {
        let Some(&sa) = strong.env.get(x) else {
            return false;
        };
        match phi.get(wa) {
            Some(&prev) if prev != sa => return false,
            _ => {
                phi.insert(*wa, sa);
            }
        }
    }
    // Match weak's heap facts; sources become mapped as the frontier
    // grows. Each strong fact may justify at most one weak fact
    // (separation), tracked by the consumed sets.
    let mut consumed = Consumed::default();
    let mut remaining: Vec<(Addr, Addr, bool)> = weak
        .lsegs
        .iter()
        .map(|&(a, b)| (a, b, false))
        .chain(weak.pts.iter().map(|(&a, &b)| (a, b, true)))
        .collect();
    while !remaining.is_empty() {
        let mut still = Vec::new();
        let mut progress = false;
        for (a, b, is_pts) in remaining {
            let Some(&sa) = phi.get(&a) else {
                still.push((a, b, is_pts));
                continue;
            };
            progress = true;
            if is_pts {
                // A weak points-to needs an exact strong points-to.
                let Some(&sb) = strong.pts.get(&sa) else {
                    return false;
                };
                if consumed.pts.contains(&sa) {
                    return false;
                }
                consumed.pts.insert(sa);
                match phi.get(&b) {
                    Some(&prev) if prev != sb => return false,
                    _ => {
                        phi.insert(b, sb);
                    }
                }
            } else {
                match phi.get(&b).copied() {
                    Some(sb) => {
                        if !walk_match(strong, &mut consumed, sa, sb) {
                            return false;
                        }
                    }
                    None => {
                        // ∃b: bind structurally — follow strong's own
                        // out-fact when present (so self-entailment holds),
                        // else the empty instantiation b := a.
                        let target = if let Some(&t) = strong.pts.get(&sa) {
                            if consumed.pts.insert(sa) {
                                Some(t)
                            } else {
                                None
                            }
                        } else if let Some(&seg) = strong
                            .lsegs
                            .iter()
                            .find(|seg| seg.0 == sa && !consumed.lsegs.contains(*seg))
                        {
                            consumed.lsegs.insert(seg);
                            Some(seg.1)
                        } else {
                            None
                        };
                        phi.insert(b, target.unwrap_or(sa));
                    }
                }
            }
        }
        if !progress {
            return false; // weak has facts unreachable from its roots
        }
        remaining = still;
    }
    // Pure constraints must be implied.
    for (a, b) in &weak.diseqs {
        let (Some(&sa), Some(&sb)) = (phi.get(a), phi.get(b)) else {
            return false;
        };
        if sa == sb {
            return false;
        }
        let nonnull = |x: Addr| strong.has_diseq(x, Addr::Null) || strong.pts.contains_key(&x);
        let implied = strong.has_diseq(sa, sb)
            || (sa == Addr::Null && nonnull(sb))
            || (sb == Addr::Null && nonnull(sa));
        if !implied {
            return false;
        }
    }
    true
}

/// Tracks which strong facts have justified a weak fact already.
#[derive(Debug, Default)]
struct Consumed {
    lsegs: BTreeSet<(Addr, Addr)>,
    /// Points-to owners consumed.
    pts: BTreeSet<Addr>,
}

/// Consumes a chain of unconsumed `strong` facts (points-to or segments)
/// from `from` to `to` (possibly empty).
fn walk_match(strong: &SymHeap, consumed: &mut Consumed, from: Addr, to: Addr) -> bool {
    let mut cur = from;
    let mut steps = 0;
    loop {
        if cur == to {
            return true;
        }
        if let Some(&t) = strong.pts.get(&cur) {
            if consumed.pts.insert(cur) {
                cur = t;
                steps += 1;
                if steps > strong.lsegs.len() + strong.pts.len() + 1 {
                    return false;
                }
                continue;
            }
        }
        let next = strong
            .lsegs
            .iter()
            .find(|seg| seg.0 == cur && !consumed.lsegs.contains(*seg))
            .copied();
        match next {
            Some(seg) => {
                consumed.lsegs.insert(seg);
                cur = seg.1;
            }
            None => return false,
        }
        steps += 1;
        if steps > strong.lsegs.len() + strong.pts.len() + 1 {
            return false;
        }
    }
}

/// Maximum number of disjuncts before the state collapses to `⊤`.
const MAX_DISJUNCTS: usize = 32;

/// The shape abstract domain state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ShapeDomain {
    /// Unreachable.
    Bottom,
    /// A disjunction of canonical symbolic heaps plus imprecision flags.
    State {
        /// Canonicalized disjuncts.
        heaps: BTreeSet<SymHeap>,
        /// A memory-safety violation (null dereference) may have occurred.
        err: bool,
        /// The heap is unknown (analysis gave up on some write).
        top: bool,
    },
}

impl ShapeDomain {
    /// The empty-heap state (no variables tracked, no error).
    pub fn top_state() -> ShapeDomain {
        ShapeDomain::State {
            heaps: [SymHeap::default()].into_iter().collect(),
            err: false,
            top: false,
        }
    }

    /// The precondition "each of `vars` is a well-formed (acyclic,
    /// null-terminated) list, all pairwise disjoint": `lseg(αᵢ, null)` for
    /// each variable — the paper's `φ₀` for `append`.
    pub fn with_lists(vars: &[&str]) -> ShapeDomain {
        let mut h = SymHeap::default();
        for (i, v) in vars.iter().enumerate() {
            let a = Addr::Sym(i as u32);
            h.env.insert(Symbol::new(v), a);
            h.lsegs.insert((a, Addr::Null));
        }
        ShapeDomain::State {
            heaps: [h].into_iter().collect(),
            err: false,
            top: false,
        }
    }

    /// Rebuilds a state from persisted parts, re-entering through the
    /// same normalization as [`ShapeDomain::from_heaps`] (persistence
    /// accessor): `⊥`/`⊤` collapse, saturation + GC, deduplication, and
    /// the disjunct cap. A snapshot therefore cannot materialize a state
    /// unreachable through the domain's own constructors — e.g. an empty
    /// non-`err` disjunction that should be `Bottom`, or more than
    /// `MAX_DISJUNCTS` disjuncts. States the domain itself produced are
    /// already fixed points of this normalization, so honest roundtrips
    /// are unchanged.
    pub fn from_parts(heaps: Vec<SymHeap>, err: bool, top: bool) -> ShapeDomain {
        ShapeDomain::from_heaps(heaps, err, top)
    }

    /// Builds a state from raw disjuncts: saturation and deduplication
    /// only. Transfer functions use this — canonicalization (GC, folding,
    /// renaming) happens **only at widening points**, so that facts
    /// materialized by a loop guard survive until the body has used them
    /// (the classic shape-analysis phasing).
    fn from_heaps(heaps: Vec<SymHeap>, err: bool, top: bool) -> ShapeDomain {
        if top {
            return ShapeDomain::State {
                heaps: BTreeSet::new(),
                err,
                top: true,
            };
        }
        let mut set: BTreeSet<SymHeap> = BTreeSet::new();
        for h in heaps {
            for mut s in saturate(h) {
                gc(&mut s);
                set.insert(s);
            }
        }
        if set.is_empty() && !err {
            return ShapeDomain::Bottom;
        }
        if set.len() > MAX_DISJUNCTS {
            return ShapeDomain::State {
                heaps: BTreeSet::new(),
                err,
                top: true,
            };
        }
        ShapeDomain::State {
            heaps: set,
            err,
            top: false,
        }
    }

    /// Builds a state in canonical form: canonicalization plus
    /// entailment-based subsumption. Used by widening, where convergence
    /// requires the finite canonical universe.
    fn from_heaps_canonical(heaps: Vec<SymHeap>, err: bool, top: bool) -> ShapeDomain {
        if top {
            return ShapeDomain::State {
                heaps: BTreeSet::new(),
                err,
                top: true,
            };
        }
        let mut set: BTreeSet<SymHeap> = BTreeSet::new();
        for h in heaps {
            for c in canonicalize(h) {
                set.insert(c);
            }
        }
        // Subsumption: drop disjuncts entailed by (weaker) disjuncts; the
        // union of concretizations is unchanged.
        let list: Vec<SymHeap> = set.into_iter().collect();
        let mut keep = vec![true; list.len()];
        for i in 0..list.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..list.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if entails(&list[i], &list[j]) {
                    // Mutual entailment keeps the smaller index.
                    if entails(&list[j], &list[i]) && j > i {
                        continue;
                    }
                    keep[i] = false;
                    break;
                }
            }
        }
        let set: BTreeSet<SymHeap> = list
            .into_iter()
            .zip(keep)
            .filter_map(|(h, k)| k.then_some(h))
            .collect();
        if set.is_empty() && !err {
            return ShapeDomain::Bottom;
        }
        if set.len() > MAX_DISJUNCTS {
            return ShapeDomain::State {
                heaps: BTreeSet::new(),
                err,
                top: true,
            };
        }
        ShapeDomain::State {
            heaps: set,
            err,
            top: false,
        }
    }

    /// May a memory-safety violation have occurred (the §7.2 client)?
    pub fn may_error(&self) -> bool {
        match self {
            ShapeDomain::Bottom => false,
            ShapeDomain::State { err, top, .. } => *err || *top,
        }
    }

    /// Does every disjunct prove that `var` points to a well-formed
    /// (acyclic, null-terminated) list?
    pub fn proves_list(&self, var: &str) -> bool {
        match self {
            ShapeDomain::Bottom => true,
            ShapeDomain::State { top: true, .. } => false,
            ShapeDomain::State { heaps, .. } => heaps.iter().all(|h| {
                let Some(&start) = h.env.get(var) else {
                    return false;
                };
                let mut cur = start;
                let mut visited = BTreeSet::new();
                loop {
                    if cur == Addr::Null {
                        return true;
                    }
                    if !visited.insert(cur) {
                        return false; // cycle
                    }
                    if let Some(b) = h.pts.get(&cur) {
                        cur = *b;
                    } else if let Some(&(_, b)) = h.lsegs.iter().find(|(a, _)| *a == cur) {
                        cur = b;
                    } else {
                        return false; // dangling
                    }
                }
            }),
        }
    }

    /// Number of disjuncts (0 for ⊥/⊤ states).
    pub fn disjunct_count(&self) -> usize {
        match self {
            ShapeDomain::Bottom => 0,
            ShapeDomain::State { heaps, .. } => heaps.len(),
        }
    }

    /// Applies `f` to every disjunct; `f` returns the replacement disjuncts
    /// plus error/top contributions.
    fn flat_map_heaps(
        &self,
        mut f: impl FnMut(&SymHeap) -> (Vec<SymHeap>, bool, bool),
    ) -> ShapeDomain {
        match self {
            ShapeDomain::Bottom => ShapeDomain::Bottom,
            ShapeDomain::State { heaps, err, top } => {
                if *top {
                    return self.clone();
                }
                let mut out = Vec::new();
                let mut err2 = *err;
                let mut top2 = false;
                for h in heaps {
                    let (hs, e, t) = f(h);
                    out.extend(hs);
                    err2 |= e;
                    top2 |= t;
                }
                ShapeDomain::from_heaps(out, err2, top2)
            }
        }
    }
}

/// Outcome of resolving `x.next` in one disjunct.
enum Deref {
    /// The cell is materialized; its target address is known.
    Target(Addr),
    /// Nothing is known about the cell (`may_null` says whether the base
    /// pointer may be null).
    Unknown { may_null: bool },
    /// The base pointer is definitely null.
    NullBase,
}

/// Materializes the `next` cell of `env[x]`, returning the resulting
/// disjuncts (case splits from unfolding segments).
fn materialize(h: &SymHeap, x: &Symbol) -> Vec<(SymHeap, Deref)> {
    let Some(&a) = h.env.get(x) else {
        return vec![(h.clone(), Deref::Unknown { may_null: true })];
    };
    materialize_addr(h, x, a)
}

fn materialize_addr(h: &SymHeap, x: &Symbol, a: Addr) -> Vec<(SymHeap, Deref)> {
    if a == Addr::Null {
        return vec![(h.clone(), Deref::NullBase)];
    }
    if let Some(&b) = h.pts.get(&a) {
        return vec![(h.clone(), Deref::Target(b))];
    }
    if let Some(&(s, e)) = h.lsegs.iter().find(|(s, _)| *s == a) {
        let mut out = Vec::new();
        // Case 1: the segment is empty (a = e); retry on the result.
        let mut h_empty = h.clone();
        h_empty.lsegs.remove(&(s, e));
        for h2 in h_empty.assert_eq(a, e) {
            // After substitution the variable may map elsewhere; re-resolve.
            let new_a = h2.env.get(x).copied().unwrap_or(if a == s { e } else { a });
            out.extend(materialize_addr(&h2, x, new_a));
        }
        // Case 2: the segment is non-empty: unfold one cell.
        let mut h_ne = h.clone();
        h_ne.lsegs.remove(&(s, e));
        let fresh = h_ne.fresh_addr();
        h_ne.pts.insert(a, fresh);
        h_ne.lsegs.insert((fresh, e));
        h_ne.add_diseq(a, Addr::Null);
        for h2 in saturate(h_ne) {
            out.push((h2, Deref::Target(fresh)));
        }
        return out;
    }
    vec![(
        h.clone(),
        Deref::Unknown {
            may_null: h.may_be_null(a),
        },
    )]
}

/// Resolves a pointer expression to an address in one disjunct, possibly
/// materializing. Returns the feasible cases `(heap, address-if-known)`
/// and whether some case faulted (definite or possible null base): the
/// faulting case contributes the error flag and no successor, while the
/// other cases continue.
fn resolve_ptr(h: &SymHeap, e: &Expr) -> (Vec<(SymHeap, Option<Addr>)>, bool) {
    match e {
        Expr::Null => (vec![(h.clone(), Some(Addr::Null))], false),
        Expr::Var(x) => (vec![(h.clone(), h.env.get(x).copied())], false),
        Expr::Field(base, f) if f.as_str() == "next" => {
            if let Expr::Var(y) = &**base {
                let mut err = false;
                let mut cases = Vec::new();
                for (h2, d) in materialize(h, y) {
                    match d {
                        Deref::Target(b) => cases.push((h2, Some(b))),
                        Deref::Unknown { may_null } => {
                            err |= may_null;
                            cases.push((h2, None));
                        }
                        Deref::NullBase => err = true, // this case faults
                    }
                }
                (cases, err)
            } else {
                (vec![(h.clone(), None)], true)
            }
        }
        _ => (vec![(h.clone(), None)], false),
    }
}

impl fmt::Display for ShapeDomain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShapeDomain::Bottom => write!(f, "⊥"),
            ShapeDomain::State { heaps, err, top } => {
                if *top {
                    write!(f, "⊤heap")?;
                } else {
                    for (i, h) in heaps.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ∨ ")?;
                        }
                        write!(f, "⟨")?;
                        let mut first = true;
                        for (x, a) in &h.env {
                            if !first {
                                write!(f, ", ")?;
                            }
                            write!(f, "{x}={a}")?;
                            first = false;
                        }
                        write!(f, " | ")?;
                        first = true;
                        for (a, b) in &h.pts {
                            if !first {
                                write!(f, " * ")?;
                            }
                            write!(f, "{a}↦{b}")?;
                            first = false;
                        }
                        for (a, b) in &h.lsegs {
                            if !first {
                                write!(f, " * ")?;
                            }
                            write!(f, "lseg({a},{b})")?;
                            first = false;
                        }
                        if first {
                            write!(f, "emp")?;
                        }
                        if !h.diseqs.is_empty() {
                            write!(f, " | ")?;
                            for (i, (a, b)) in h.diseqs.iter().enumerate() {
                                if i > 0 {
                                    write!(f, ", ")?;
                                }
                                write!(f, "{a}≠{b}")?;
                            }
                        }
                        write!(f, "⟩")?;
                    }
                }
                if *err {
                    write!(f, " [may-err]")?;
                }
                Ok(())
            }
        }
    }
}

impl AbstractDomain for ShapeDomain {
    fn bottom() -> Self {
        ShapeDomain::Bottom
    }

    fn is_bottom(&self) -> bool {
        matches!(self, ShapeDomain::Bottom)
    }

    fn entry_default(_params: &[Symbol]) -> Self {
        // Parameters unconstrained: not tracked in the environment.
        ShapeDomain::top_state()
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (ShapeDomain::Bottom, x) | (x, ShapeDomain::Bottom) => x.clone(),
            (
                ShapeDomain::State {
                    heaps: h1,
                    err: e1,
                    top: t1,
                },
                ShapeDomain::State {
                    heaps: h2,
                    err: e2,
                    top: t2,
                },
            ) => {
                let heaps = h1.iter().chain(h2.iter()).cloned().collect();
                ShapeDomain::from_heaps(heaps, *e1 || *e2, *t1 || *t2)
            }
        }
    }

    fn widen(&self, next: &Self) -> Self {
        // Union + canonicalization + subsumption converges: canonical
        // heaps over the program's variables form a finite universe (see
        // module docs), and subsumption keeps the set small.
        match (self, next) {
            (ShapeDomain::Bottom, x) | (x, ShapeDomain::Bottom) => match x {
                ShapeDomain::Bottom => ShapeDomain::Bottom,
                ShapeDomain::State { heaps, err, top } => {
                    ShapeDomain::from_heaps_canonical(heaps.iter().cloned().collect(), *err, *top)
                }
            },
            (
                ShapeDomain::State {
                    heaps: h1,
                    err: e1,
                    top: t1,
                },
                ShapeDomain::State {
                    heaps: h2,
                    err: e2,
                    top: t2,
                },
            ) => {
                let heaps = h1.iter().chain(h2.iter()).cloned().collect();
                ShapeDomain::from_heaps_canonical(heaps, *e1 || *e2, *t1 || *t2)
            }
        }
    }

    fn leq(&self, other: &Self) -> bool {
        match (self, other) {
            (ShapeDomain::Bottom, _) => true,
            (_, ShapeDomain::Bottom) => false,
            (
                ShapeDomain::State {
                    heaps: h1,
                    err: e1,
                    top: t1,
                },
                ShapeDomain::State {
                    heaps: h2,
                    err: e2,
                    top: t2,
                },
            ) => {
                if *e1 && !*e2 {
                    return false;
                }
                if *t2 {
                    return true;
                }
                if *t1 {
                    return false;
                }
                // Entailment-based disjunct inclusion (sound, incomplete).
                h1.iter().all(|a| h2.iter().any(|b| entails(a, b)))
            }
        }
    }

    fn transfer(&self, stmt: &Stmt) -> Self {
        match stmt {
            Stmt::Skip | Stmt::Print(_) | Stmt::ArrayWrite(..) => self.clone(),
            Stmt::Assign(x, e) => self.flat_map_heaps(|h| transfer_assign(h, x, e)),
            Stmt::FieldWrite(x, field, e) => {
                if field.as_str() == "next" {
                    self.flat_map_heaps(|h| transfer_next_write(h, x, e))
                } else {
                    // Non-shape field: only the null-check matters.
                    self.flat_map_heaps(|h| {
                        let may_null = h.env.get(x).is_none_or(|&a| h.may_be_null(a));
                        if h.env.get(x) == Some(&Addr::Null) {
                            (Vec::new(), true, false)
                        } else {
                            (vec![h.clone()], may_null, false)
                        }
                    })
                }
            }
            Stmt::Assume(e) => self.flat_map_heaps(|h| refine_heap(h, e, true)),
            Stmt::Call { .. } => {
                // Intraprocedural fallback: an unknown callee may mutate
                // any reachable cell.
                match self {
                    ShapeDomain::Bottom => ShapeDomain::Bottom,
                    ShapeDomain::State { err, .. } => ShapeDomain::State {
                        heaps: BTreeSet::new(),
                        err: *err,
                        top: true,
                    },
                }
            }
        }
    }

    fn call_entry(&self, site: CallSite<'_>, callee_params: &[Symbol]) -> Self {
        // Rename caller locals into frame variables (so callee-local
        // reasoning cannot clobber them), then bind formals to actuals.
        let prefix = format!("$frame${}$", site.site_key);
        self.flat_map_heaps(|h| {
            let mut out = SymHeap {
                env: BTreeMap::new(),
                ..h.clone()
            };
            for (x, a) in &h.env {
                out.env.insert(Symbol::new(format!("{prefix}{x}")), *a);
            }
            for (p, arg) in callee_params.iter().zip(site.args) {
                match arg {
                    Expr::Null => {
                        out.env.insert(p.clone(), Addr::Null);
                    }
                    Expr::Var(y) => {
                        if let Some(&a) = h.env.get(y) {
                            out.env.insert(p.clone(), a);
                        }
                    }
                    _ => {}
                }
            }
            (vec![out], false, false)
        })
    }

    fn call_return(&self, site: CallSite<'_>, callee_exit: &Self) -> Self {
        let prefix = format!("$frame${}$", site.site_key);
        match callee_exit {
            ShapeDomain::Bottom => ShapeDomain::Bottom,
            ShapeDomain::State { .. } => callee_exit.flat_map_heaps(|h| {
                let mut out = SymHeap {
                    env: BTreeMap::new(),
                    ..h.clone()
                };
                let ret = h.env.get(RETURN_VAR).copied();
                for (x, a) in &h.env {
                    if let Some(orig) = x.as_str().strip_prefix(&prefix) {
                        out.env.insert(Symbol::new(orig), *a);
                    }
                }
                if let (Some(lhs), Some(r)) = (site.lhs, ret) {
                    out.env.insert(lhs.clone(), r);
                }
                (vec![out], false, false)
            }),
        }
    }

    fn models(&self, concrete: &ConcreteState) -> bool {
        match self {
            ShapeDomain::Bottom => false,
            ShapeDomain::State { top: true, .. } => true,
            ShapeDomain::State { heaps, .. } => heaps.iter().any(|h| heap_models(h, concrete)),
        }
    }
}

fn transfer_assign(h: &SymHeap, x: &Symbol, e: &Expr) -> (Vec<SymHeap>, bool, bool) {
    match e {
        Expr::Null => {
            let mut h2 = h.clone();
            h2.env.insert(x.clone(), Addr::Null);
            (vec![h2], false, false)
        }
        Expr::Var(y) => {
            let mut h2 = h.clone();
            match h.env.get(y) {
                Some(&a) => {
                    h2.env.insert(x.clone(), a);
                }
                None => {
                    h2.env.remove(x);
                }
            }
            (vec![h2], false, false)
        }
        Expr::AllocNode => {
            let mut h2 = h.clone();
            let fresh = h2.fresh_addr();
            // A fresh node differs from every known address.
            for a in h2.all_addrs() {
                h2.add_diseq(fresh, a);
            }
            h2.add_diseq(fresh, Addr::Null);
            h2.env.insert(x.clone(), fresh);
            h2.pts.insert(fresh, Addr::Null);
            (vec![h2], false, false)
        }
        Expr::Field(base, f) if f.as_str() == "next" => {
            if let Expr::Var(y) = &**base {
                let mut out = Vec::new();
                let mut err = false;
                for (h2, d) in materialize(h, y) {
                    match d {
                        Deref::Target(b) => {
                            let mut h3 = h2;
                            h3.env.insert(x.clone(), b);
                            out.push(h3);
                        }
                        Deref::Unknown { may_null } => {
                            err |= may_null;
                            let mut h3 = h2;
                            h3.env.remove(x);
                            out.push(h3);
                        }
                        Deref::NullBase => {
                            err = true; // this path definitely faults
                        }
                    }
                }
                (out, err, false)
            } else {
                let mut h2 = h.clone();
                h2.env.remove(x);
                (vec![h2], true, false)
            }
        }
        Expr::Field(base, _) => {
            // Data field: untracked value, but the dereference still needs
            // a null check.
            let err = if let Expr::Var(y) = &**base {
                match h.env.get(y) {
                    Some(&Addr::Null) => return (Vec::new(), true, false),
                    Some(&a) => h.may_be_null(a),
                    None => true,
                }
            } else {
                true
            };
            let mut h2 = h.clone();
            h2.env.remove(x);
            (vec![h2], err, false)
        }
        _ => {
            // Non-pointer expression: untrack x.
            let mut h2 = h.clone();
            h2.env.remove(x);
            (vec![h2], false, false)
        }
    }
}

fn transfer_next_write(h: &SymHeap, x: &Symbol, e: &Expr) -> (Vec<SymHeap>, bool, bool) {
    let mut out = Vec::new();
    let mut err = false;
    let mut top = false;
    for (h2, d) in materialize(h, x) {
        match d {
            Deref::Target(_) => {
                let a = h2
                    .env
                    .get(x)
                    .copied()
                    .expect("materialized base is tracked");
                match e {
                    Expr::Null => {
                        let mut h3 = h2;
                        h3.pts.insert(a, Addr::Null);
                        out.push(h3);
                    }
                    Expr::Var(y) => match h2.env.get(y) {
                        Some(&b) => {
                            let mut h3 = h2.clone();
                            h3.pts.insert(a, b);
                            out.push(h3);
                        }
                        None => {
                            // Unknown (possibly non-pointer) value: the
                            // cell's content becomes unknown.
                            let mut h3 = h2.clone();
                            h3.pts.remove(&a);
                            out.push(h3);
                        }
                    },
                    _ => {
                        let mut h3 = h2;
                        h3.pts.remove(&a);
                        out.push(h3);
                    }
                }
            }
            Deref::Unknown { may_null } => {
                // Write through an unknown pointer: it may alias anything.
                err |= may_null;
                top = true;
            }
            Deref::NullBase => {
                err = true;
            }
        }
    }
    (out, err, top)
}

/// Refines one disjunct under `cond = expected`.
fn refine_heap(h: &SymHeap, cond: &Expr, expected: bool) -> (Vec<SymHeap>, bool, bool) {
    match cond {
        Expr::Bool(b) => {
            if *b == expected {
                (vec![h.clone()], false, false)
            } else {
                (Vec::new(), false, false)
            }
        }
        Expr::Unary(UnOp::Not, inner) => refine_heap(h, inner, !expected),
        Expr::Binary(BinOp::And, l, r) if expected => {
            let (hs, e1, t1) = refine_heap(h, l, true);
            let mut out = Vec::new();
            let (mut err, mut top) = (e1, t1);
            for h2 in hs {
                let (hs2, e2, t2) = refine_heap(&h2, r, true);
                out.extend(hs2);
                err |= e2;
                top |= t2;
            }
            (out, err, top)
        }
        Expr::Binary(BinOp::And, l, r) => {
            let (mut hs, e1, t1) = refine_heap(h, l, false);
            let (hs2, e2, t2) = refine_heap(h, r, false);
            hs.extend(hs2);
            (hs, e1 || e2, t1 || t2)
        }
        Expr::Binary(BinOp::Or, l, r) if expected => {
            let (mut hs, e1, t1) = refine_heap(h, l, true);
            let (hs2, e2, t2) = refine_heap(h, r, true);
            hs.extend(hs2);
            (hs, e1 || e2, t1 || t2)
        }
        Expr::Binary(BinOp::Or, l, r) => {
            let (hs, e1, t1) = refine_heap(h, l, false);
            let mut out = Vec::new();
            let (mut err, mut top) = (e1, t1);
            for h2 in hs {
                let (hs2, e2, t2) = refine_heap(&h2, r, false);
                out.extend(hs2);
                err |= e2;
                top |= t2;
            }
            (out, err, top)
        }
        Expr::Binary(op @ (BinOp::Eq | BinOp::Ne), l, r) => {
            let positive_eq = (*op == BinOp::Eq) == expected;
            let mut out = Vec::new();
            let (lcases, lerr) = resolve_ptr(h, l);
            let mut err = lerr;
            for (h1, la) in lcases {
                let (rcases, rerr) = resolve_ptr(&h1, r);
                err |= rerr;
                for (h2, ra) in rcases {
                    match (la, ra) {
                        (Some(a), Some(b)) => {
                            if positive_eq {
                                out.extend(h2.assert_eq(a, b));
                            } else if a == b {
                                // definitely equal: infeasible
                            } else {
                                let mut h3 = h2.clone();
                                h3.add_diseq(a, b);
                                out.extend(saturate(h3));
                            }
                        }
                        _ => out.push(h2),
                    }
                }
            }
            (out, err, false)
        }
        _ => (vec![h.clone()], false, false),
    }
}

/// Model check: does the symbolic heap cover the concrete state?
/// Conservative in the accepting direction (never reports a false
/// violation); used only by test harnesses.
fn heap_models(h: &SymHeap, concrete: &ConcreteState) -> bool {
    // Interpretation of addresses as concrete null/node values.
    #[derive(Clone, Copy, PartialEq, Eq, Debug)]
    enum CV {
        Null,
        Node(NodeId),
    }
    fn of_value(v: &Value) -> Option<CV> {
        match v {
            Value::Null => Some(CV::Null),
            Value::Node(id) => Some(CV::Node(*id)),
            _ => None,
        }
    }

    let mut assign: BTreeMap<Addr, CV> = BTreeMap::new();
    assign.insert(Addr::Null, CV::Null);
    for (x, a) in &h.env {
        let Some(cv) = concrete.env.get(x) else {
            continue;
        };
        let Some(cv) = of_value(cv) else { return false };
        match assign.get(a) {
            Some(prev) if *prev != cv => return false,
            _ => {
                assign.insert(*a, cv);
            }
        }
    }

    fn next_of(concrete: &ConcreteState, cv: CV) -> Option<CV> {
        match cv {
            CV::Null => None,
            CV::Node(id) => {
                let v = concrete.read_field(id, &Symbol::new("next"))?;
                of_value(&v)
            }
        }
    }

    // Backtracking solver over the facts.
    fn solve(h: &SymHeap, concrete: &ConcreteState, mut assign: BTreeMap<Addr, CV>) -> bool {
        // Propagate points-to facts deterministically.
        loop {
            let mut progressed = false;
            for (a, b) in &h.pts {
                let Some(&av) = assign.get(a) else { continue };
                if av == CV::Null {
                    return false; // null owns no cell
                }
                let Some(next) = next_of(concrete, av) else {
                    return false;
                };
                match assign.get(b) {
                    Some(&bv) => {
                        if bv != next {
                            return false;
                        }
                    }
                    None => {
                        assign.insert(*b, next);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                break;
            }
        }
        // Check disequalities where both sides are known.
        for (a, b) in &h.diseqs {
            if let (Some(x), Some(y)) = (assign.get(a), assign.get(b)) {
                if x == y {
                    return false;
                }
            }
        }
        // Find an unresolved segment with a known start.
        let seg = h.lsegs.iter().find(|(a, b)| {
            assign.contains_key(a) && {
                let _ = b;
                true
            }
        });
        let Some(&(a, b)) = seg else {
            // No checkable segments left: accept (conservative).
            return true;
        };
        let start = assign[&a];
        match assign.get(&b).copied() {
            Some(end) => {
                // Deterministic walk: start must reach end.
                let mut cur = start;
                let mut fuel = concrete.heap.len() + 2;
                let mut rest = h.clone();
                rest.lsegs.remove(&(a, b));
                loop {
                    if cur == end {
                        return solve(&rest, concrete, assign);
                    }
                    if fuel == 0 {
                        return false;
                    }
                    fuel -= 1;
                    match next_of(concrete, cur) {
                        Some(n) => cur = n,
                        None => return false,
                    }
                }
            }
            None => {
                // Try every stopping point along the chain for b.
                let mut rest = h.clone();
                rest.lsegs.remove(&(a, b));
                let mut cur = start;
                let mut fuel = concrete.heap.len() + 2;
                loop {
                    let mut attempt = assign.clone();
                    attempt.insert(b, cur);
                    let mut with_seg = rest.clone();
                    with_seg.lsegs.insert((a, b));
                    // Re-check with b now fixed (the segment itself will be
                    // verified by the deterministic branch).
                    if solve(&with_seg, concrete, attempt) {
                        return true;
                    }
                    if fuel == 0 {
                        return false;
                    }
                    fuel -= 1;
                    match next_of(concrete, cur) {
                        Some(n) => cur = n,
                        None => return false,
                    }
                }
            }
        }
    }

    solve(h, concrete, assign)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dai_lang::parse_expr;

    fn assume(s: &ShapeDomain, cond: &str) -> ShapeDomain {
        s.transfer(&Stmt::Assume(parse_expr(cond).unwrap()))
    }

    fn assign(s: &ShapeDomain, x: &str, e: &str) -> ShapeDomain {
        let e = if e == "new Node()" {
            Expr::AllocNode
        } else {
            parse_expr(e).unwrap()
        };
        s.transfer(&Stmt::Assign(x.into(), e))
    }

    #[test]
    fn alloc_gives_nonnull_node() {
        let s = assign(&ShapeDomain::top_state(), "n", "new Node()");
        assert!(!s.may_error());
        assert!(s.proves_list("n"));
        // n is definitely non-null.
        assert!(assume(&s, "n == null").is_bottom());
    }

    #[test]
    fn null_assignment_and_test() {
        let s = assign(&ShapeDomain::top_state(), "p", "null");
        assert!(assume(&s, "p != null").is_bottom());
        assert!(!assume(&s, "p == null").is_bottom());
    }

    #[test]
    fn null_dereference_detected() {
        let s = assign(&ShapeDomain::top_state(), "p", "null");
        let s2 = assign(&s, "x", "p.next");
        assert!(s2.may_error());
    }

    #[test]
    fn precondition_lists_are_lists() {
        let s = ShapeDomain::with_lists(&["p", "q"]);
        assert!(s.proves_list("p"));
        assert!(s.proves_list("q"));
        assert!(!s.may_error());
    }

    #[test]
    fn materialization_case_splits_on_lseg() {
        let s = ShapeDomain::with_lists(&["p"]);
        // After assuming p != null, the list is non-empty; reading p.next
        // is safe.
        let nonempty = assume(&s, "p != null");
        assert!(!nonempty.is_bottom());
        let read = assign(&nonempty, "x", "p.next");
        assert!(!read.may_error(), "{read}");
        assert!(read.proves_list("x"), "{read}");
    }

    #[test]
    fn reading_possibly_null_list_head_errors() {
        let s = ShapeDomain::with_lists(&["p"]);
        // p may be the empty list (p = null): dereference must alarm.
        let read = assign(&s, "x", "p.next");
        assert!(read.may_error());
    }

    #[test]
    fn next_write_after_null_check_is_safe() {
        let s = ShapeDomain::with_lists(&["p", "q"]);
        let s = assume(&s, "p != null");
        let s = s.transfer(&Stmt::FieldWrite(
            "p".into(),
            "next".into(),
            parse_expr("q").unwrap(),
        ));
        assert!(!s.may_error(), "{s}");
    }

    #[test]
    fn data_field_untracked_but_null_checked() {
        let s = assign(&ShapeDomain::top_state(), "n", "new Node()");
        let s2 = assign(&s, "v", "n.data");
        assert!(!s2.may_error());
        let null = assign(&ShapeDomain::top_state(), "p", "null");
        let s3 = assign(&null, "v", "p.data");
        assert!(s3.may_error());
    }

    #[test]
    fn join_unions_disjuncts() {
        let a = assign(&ShapeDomain::top_state(), "p", "null");
        let b = assign(&ShapeDomain::top_state(), "p", "new Node()");
        let j = a.join(&b);
        assert_eq!(j.disjunct_count(), 2);
        assert!(a.leq(&j) && b.leq(&j));
    }

    #[test]
    fn widen_equals_join_and_is_idempotent() {
        let a = ShapeDomain::with_lists(&["p"]);
        let w = a.widen(&a);
        assert_eq!(w, a);
    }

    #[test]
    fn canonicalization_folds_unfolded_lists() {
        // Unfold then re-canonicalize: p != null; x = p.next gives
        // p ↦ x * lseg(x, null); x is named so it stays, but after
        // x = null the cell chain from p is foldable again.
        let s = ShapeDomain::with_lists(&["p"]);
        let s = assume(&s, "p != null");
        let s = assign(&s, "x", "p.next");
        let s = assign(&s, "x", "null");
        // p's shape is again a single (nonempty) list description.
        assert!(s.proves_list("p"), "{s}");
        assert_eq!(s.disjunct_count(), 1, "{s}");
    }

    #[test]
    fn append_loop_body_preserves_listness() {
        // The core of Fig. 1: r walks the list.
        let s = ShapeDomain::with_lists(&["p", "q"]);
        let s = assume(&s, "p != null");
        let s = assign(&s, "r", "p");
        // while (r.next != null) { r = r.next; } — one iteration:
        let s = assume(&s, "r.next != null");
        assert!(!s.may_error(), "{s}");
        let s = assign(&s, "r", "r.next");
        assert!(!s.may_error(), "{s}");
        assert!(s.proves_list("r"), "{s}");
        assert!(s.proves_list("p"), "{s}");
    }

    #[test]
    fn assume_next_null_materializes() {
        let s = ShapeDomain::with_lists(&["p"]);
        let s = assume(&s, "p != null");
        let s = assume(&s, "p.next == null");
        assert!(!s.is_bottom());
        assert!(!s.may_error(), "{s}");
        assert!(s.proves_list("p"));
    }

    #[test]
    fn eq_test_substitutes() {
        let s = assign(
            &assign(&ShapeDomain::top_state(), "a", "new Node()"),
            "b",
            "a",
        );
        // a == b must hold.
        assert!(!assume(&s, "a == b").is_bottom());
        assert!(assume(&s, "a != b").is_bottom());
    }

    #[test]
    fn fresh_nodes_are_distinct() {
        let s = assign(
            &assign(&ShapeDomain::top_state(), "a", "new Node()"),
            "b",
            "new Node()",
        );
        assert!(assume(&s, "a == b").is_bottom());
    }

    #[test]
    fn unknown_write_goes_top() {
        // Writing through an untracked pointer loses the heap.
        let s = ShapeDomain::top_state();
        let s2 = s.transfer(&Stmt::FieldWrite(
            "mystery".into(),
            "next".into(),
            Expr::Null,
        ));
        assert!(s2.may_error());
    }

    #[test]
    fn call_havocs_heap_intraprocedurally() {
        let s = ShapeDomain::with_lists(&["p"]);
        let s2 = s.transfer(&Stmt::Call {
            lhs: None,
            callee: "f".into(),
            args: vec![],
        });
        assert!(s2.may_error()); // top implies no memory-safety proof
    }

    #[test]
    fn models_accepts_real_list() {
        let s = ShapeDomain::with_lists(&["p"]);
        // Concrete: p -> n0 -> n1 -> null.
        let mut c = ConcreteState::new();
        let n0 = c.alloc_node();
        let n1 = c.alloc_node();
        c.heap
            .get_mut(&n0)
            .unwrap()
            .insert("next".into(), Value::Node(n1));
        c.heap
            .get_mut(&n1)
            .unwrap()
            .insert("next".into(), Value::Null);
        c.env.insert("p".into(), Value::Node(n0));
        assert!(s.models(&c));
        // Empty list also models lseg(p, null).
        let mut c2 = ConcreteState::new();
        c2.env.insert("p".into(), Value::Null);
        assert!(s.models(&c2));
    }

    #[test]
    fn models_rejects_wrong_binding() {
        let s = assign(&ShapeDomain::top_state(), "p", "null");
        let mut c = ConcreteState::new();
        let n = c.alloc_node();
        c.env.insert("p".into(), Value::Node(n));
        assert!(!s.models(&c));
    }

    #[test]
    fn models_rejects_non_pointer_for_tracked() {
        let s = assign(&ShapeDomain::top_state(), "p", "null");
        let mut c = ConcreteState::new();
        c.env.insert("p".into(), Value::Int(3));
        assert!(!s.models(&c));
    }

    #[test]
    fn models_checks_points_to() {
        let s = assign(&ShapeDomain::top_state(), "n", "new Node()");
        // Concrete node whose next is itself: violates n ↦ null.
        let mut c = ConcreteState::new();
        let id = c.alloc_node();
        c.heap
            .get_mut(&id)
            .unwrap()
            .insert("next".into(), Value::Node(id));
        c.env.insert("n".into(), Value::Node(id));
        assert!(!s.models(&c));
        // And with next = null it models.
        let mut c2 = ConcreteState::new();
        let id2 = c2.alloc_node();
        c2.heap
            .get_mut(&id2)
            .unwrap()
            .insert("next".into(), Value::Null);
        c2.env.insert("n".into(), Value::Node(id2));
        assert!(s.models(&c2));
    }

    #[test]
    fn canonical_states_compare_equal() {
        // Two different construction orders of the same abstract heap.
        let a = assign(
            &assign(&ShapeDomain::top_state(), "x", "new Node()"),
            "y",
            "null",
        );
        let b = assign(
            &assign(&ShapeDomain::top_state(), "y", "null"),
            "x",
            "new Node()",
        );
        assert_eq!(a, b);
    }

    #[test]
    fn widening_chain_converges() {
        // Repeatedly extend a list and widen: must stabilize.
        let mut acc = ShapeDomain::with_lists(&["p"]);
        for step in 0..12 {
            // Body: p = new node prepended (p' ↦ p).
            let mut grown = assign(&acc, "t", "new Node()");
            grown = grown.transfer(&Stmt::FieldWrite(
                "t".into(),
                "next".into(),
                parse_expr("p").unwrap(),
            ));
            grown = assign(&grown, "p", "t");
            grown = assign(&grown, "t", "null");
            let next = acc.widen(&acc.join(&grown));
            if next == acc {
                assert!(step < 8, "converged but late");
                return;
            }
            acc = next;
        }
        panic!("shape widening failed to converge");
    }
}
