//! `dai-repl` — an interactive front end for demanded abstract
//! interpretation, driving the paper's IDE scenario by hand: load a
//! program, demand abstract states at locations, edit statements, and
//! re-query with incremental reuse, watching the work counters.
//!
//! ```text
//! $ cargo run --bin dai-repl -- program.js            # interval domain
//! $ cargo run --bin dai-repl -- --domain octagon p.js
//! $ cargo run --bin dai-repl -- --threads 4 p.js      # engine worker pool
//! dai> help
//! dai> list
//! dai> cfg main
//! dai> query main l3
//! dai> relabel main e2 x = x + 10
//! dai> splice main e4 if (x > 0) { y = 1; }
//! dai> serve
//! dai> stats
//! dai> dot main
//! dai> quit
//! ```
//!
//! `serve` routes the current program through the concurrent `dai-engine`:
//! a session is opened over the program, every (function, location) query
//! is submitted to the engine's request stream, answers are drained and
//! printed (sorted), and the engine's own statistics follow. Analysis is
//! intraprocedural per function (entry states from the domain's
//! `entry_default`), which is the engine's session semantics.
//!
//! Commands read from stdin, one per line; results go to stdout (errors to
//! stderr, which keeps piped sessions scriptable — the integration tests
//! drive the binary exactly that way).

use dai_core::dot::{to_dot, DotOptions};
use dai_core::interproc::{ContextPolicy, InterAnalyzer};
use dai_core::Context;
use dai_domains::{
    AbstractDomain, ConstDomain, IntervalDomain, OctagonDomain, ShapeDomain, SignDomain,
};
use dai_engine::{Engine, Request, Response, Ticket};
use dai_lang::cfg::lower_program;
use dai_lang::{EdgeId, Loc};
use std::io::{BufRead, Write};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut domain = "interval".to_string();
    let mut policy = ContextPolicy::CallString(1);
    let mut threads: usize = 1;
    let mut path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--domain" => {
                i += 1;
                domain = args.get(i).cloned().unwrap_or_default();
            }
            "--insensitive" => policy = ContextPolicy::Insensitive,
            "--call-strings" => {
                i += 1;
                let k: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--call-strings needs a number"));
                policy = ContextPolicy::CallString(k);
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--threads needs a positive number"));
            }
            "--help" | "-h" => {
                println!("usage: dai-repl [--domain interval|octagon|sign|const|shape] [--insensitive | --call-strings K] [--threads N] FILE");
                return;
            }
            other => path = Some(other.to_string()),
        }
        i += 1;
    }
    let Some(path) = path else {
        die("missing program file (try --help)")
    };
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    match domain.as_str() {
        "interval" => repl(&src, policy, threads, IntervalDomain::top()),
        "octagon" => repl(&src, policy, threads, OctagonDomain::top()),
        "sign" => repl(&src, policy, threads, SignDomain::top()),
        "const" => repl(&src, policy, threads, ConstDomain::top()),
        "shape" => repl(&src, policy, threads, ShapeDomain::top_state()),
        other => die(&format!(
            "unknown domain `{other}` (interval|octagon|sign|const|shape)"
        )),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("dai-repl: {msg}");
    std::process::exit(2)
}

/// Parses `lNN` / `eNN` style identifiers.
fn parse_loc(s: &str) -> Option<Loc> {
    s.strip_prefix('l').and_then(|n| n.parse().ok()).map(Loc)
}

fn parse_edge(s: &str) -> Option<EdgeId> {
    s.strip_prefix('e').and_then(|n| n.parse().ok()).map(EdgeId)
}

/// `serve`: route every (function, location) query of the current program
/// through a fresh `dai-engine` session, draining the answers from the
/// concurrent request stream.
fn serve_via_engine<D: AbstractDomain>(program: &dai_lang::cfg::LoweredProgram, threads: usize) {
    // Make the semantic difference from `query`/`queryall` visible in the
    // output itself: engine sessions analyze each function in isolation
    // (calls havoc conservatively), so values can be wider than the
    // interprocedural answers of the other commands.
    println!(
        "serve: intraprocedural per-function analysis (calls havoc; \
         entry states are the domain's defaults)"
    );
    let engine: Engine<D> = Engine::new(threads);
    let session = engine.open_session("repl", program.clone());
    let mut targets: Vec<(String, Loc)> = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    let tickets: Vec<Ticket<D>> = targets
        .iter()
        .map(|(f, loc)| {
            engine.submit(Request::Query {
                session,
                func: f.clone(),
                loc: *loc,
            })
        })
        .collect();
    for ((f, loc), ticket) in targets.iter().zip(tickets) {
        match ticket.wait() {
            Ok(Response::State(state)) => println!("{f} {loc}: {state}"),
            Ok(_) => eprintln!("{f} {loc}: unexpected response"),
            Err(e) => eprintln!("{f} {loc}: serve failed: {e}"),
        }
    }
    let s = engine.stats();
    println!(
        "engine: {} workers, {} queries; {} computed, {} memo-matched, {} reused; memo {} hits / {} misses",
        s.workers,
        s.queries,
        s.query_stats.computed,
        s.query_stats.memo_matched,
        s.query_stats.reused,
        s.memo.hits,
        s.memo.misses,
    );
}

fn repl<D: AbstractDomain>(src: &str, policy: ContextPolicy, threads: usize, phi0: D) {
    let program = match dai_lang::parse_program(src)
        .map_err(|e| e.to_string())
        .and_then(|p| lower_program(&p).map_err(|e| e.to_string()))
    {
        Ok(p) => p,
        Err(e) => die(&e),
    };
    let entry = if program.by_name("main").is_some() {
        "main".to_string()
    } else {
        program.cfgs()[0].name().to_string()
    };
    let mut analyzer = InterAnalyzer::new(program, policy, &entry, phi0);
    println!(
        "loaded {} function(s); entry `{entry}`; type `help`",
        analyzer.program().cfgs().len()
    );

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("dai> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => die(&format!("stdin: {e}")),
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "quit" | "exit" => break,
            "help" => print_help(),
            "serve" => serve_via_engine::<D>(analyzer.program(), threads),
            "list" => {
                for cfg in analyzer.program().cfgs() {
                    println!(
                        "{}({}) — {} locations, {} edges{}",
                        cfg.name(),
                        cfg.params()
                            .iter()
                            .map(|p| p.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        cfg.loc_count(),
                        cfg.edge_count(),
                        if cfg.loop_heads().is_empty() {
                            String::new()
                        } else {
                            format!(", loop heads {:?}", cfg.loop_heads())
                        }
                    );
                }
            }
            "cfg" => match analyzer.program().by_name(rest.trim()) {
                Some(cfg) => print!("{}", dai_lang::pretty::cfg_to_string(cfg)),
                None => eprintln!("no function `{}`", rest.trim()),
            },
            "query" => {
                let mut parts = rest.split_whitespace();
                let (Some(f), Some(l)) = (parts.next(), parts.next()) else {
                    eprintln!("usage: query FN lNN");
                    continue;
                };
                let Some(loc) = parse_loc(l) else {
                    eprintln!("bad location `{l}` (use lNN)");
                    continue;
                };
                match analyzer.query_at(f, loc) {
                    Ok(results) if results.is_empty() => {
                        println!("{f} unreachable from `{entry}`: ⊥ at {loc}");
                    }
                    Ok(results) => {
                        for (ctx, state) in results {
                            println!("[{ctx}] {state}");
                        }
                    }
                    Err(e) => eprintln!("query failed: {e}"),
                }
            }
            "queryall" => {
                let f = rest.trim();
                let Some(cfg) = analyzer.program().by_name(f).cloned() else {
                    eprintln!("no function `{f}`");
                    continue;
                };
                for loc in cfg.locs() {
                    match analyzer.query_joined(f, loc) {
                        Ok(state) => println!("{loc}: {state}"),
                        Err(e) => eprintln!("{loc}: query failed: {e}"),
                    }
                }
            }
            "deadcode" => {
                // A small analysis client: locations whose invariant is ⊥
                // in every calling context are unreachable.
                let f = rest.trim();
                let Some(cfg) = analyzer.program().by_name(f).cloned() else {
                    eprintln!("no function `{f}`");
                    continue;
                };
                let mut dead = Vec::new();
                for loc in cfg.locs() {
                    match analyzer.query_joined(f, loc) {
                        Ok(state) if state.is_bottom() => dead.push(loc),
                        Ok(_) => {}
                        Err(e) => eprintln!("{loc}: query failed: {e}"),
                    }
                }
                if dead.is_empty() {
                    println!("no unreachable locations in {f}");
                } else {
                    println!(
                        "unreachable: {}",
                        dead.iter()
                            .map(|l| l.to_string())
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                }
            }
            "relabel" => {
                let mut parts = rest.splitn(3, ' ');
                let (Some(f), Some(e), Some(stmt_src)) = (parts.next(), parts.next(), parts.next())
                else {
                    eprintln!("usage: relabel FN eNN STMT");
                    continue;
                };
                let Some(edge) = parse_edge(e) else {
                    eprintln!("bad edge `{e}` (use eNN)");
                    continue;
                };
                let block_src = format!("{};", stmt_src.trim_end_matches(';'));
                match dai_lang::parse_block(&block_src) {
                    Ok(block) if block.0.len() == 1 => {
                        let stmt = match &block.0[0] {
                            dai_lang::AstStmt::Simple(s) => s.clone(),
                            _ => {
                                eprintln!("relabel takes an atomic statement; use `splice` for control flow");
                                continue;
                            }
                        };
                        match analyzer.relabel(f, edge, stmt) {
                            Ok(()) => println!("ok"),
                            Err(e) => eprintln!("relabel failed: {e}"),
                        }
                    }
                    Ok(_) => eprintln!("relabel takes exactly one statement"),
                    Err(e) => eprintln!("parse error: {e}"),
                }
            }
            "splice" => {
                let mut parts = rest.splitn(3, ' ');
                let (Some(f), Some(e), Some(block_src)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    eprintln!("usage: splice FN eNN BLOCK");
                    continue;
                };
                let Some(edge) = parse_edge(e) else {
                    eprintln!("bad edge `{e}` (use eNN)");
                    continue;
                };
                match dai_lang::parse_block(block_src) {
                    Ok(block) => match analyzer.splice(f, edge, &block) {
                        Ok(info) => println!(
                            "ok: +{} locations, +{} edges",
                            info.new_locs.len(),
                            info.new_edges.len()
                        ),
                        Err(e) => eprintln!("splice failed: {e}"),
                    },
                    Err(e) => eprintln!("parse error: {e}"),
                }
            }
            "stats" => {
                let q = analyzer.stats();
                let m = analyzer.memo_stats();
                println!(
                    "queries: {} computed, {} memo-matched, {} reused, {} unrollings, {} fixed points",
                    q.computed, q.memo_matched, q.reused, q.unrolls, q.fix_converged
                );
                println!(
                    "memo: {} hits / {} misses ({:.0}% hit rate), {} insertions",
                    m.hits,
                    m.misses,
                    m.hit_rate() * 100.0,
                    m.insertions
                );
                println!("units: {} (function, context) DAIGs", analyzer.unit_count());
            }
            "dot" => {
                let f = rest.trim();
                match analyzer.unit(f, &Context::root()) {
                    Some(unit) => {
                        let opts = DotOptions {
                            title: Some(format!("{f} under ε")),
                            ..DotOptions::default()
                        };
                        print!("{}", to_dot(unit.daig(), &opts));
                    }
                    None => eprintln!("no DAIG for `{f}` in the root context yet (query it first)"),
                }
            }
            other => eprintln!("unknown command `{other}` (try `help`)"),
        }
    }
}

fn print_help() {
    println!(
        "commands:
  list                      functions, sizes, loop heads
  cfg FN                    print FN's control-flow graph
  query FN lNN              abstract state at a location, per context
  queryall FN               abstract states at every location (joined)
  deadcode FN               locations proven unreachable (⊥ invariant)
  relabel FN eNN STMT       replace the statement on an edge
  splice FN eNN BLOCK       insert a block before an edge's statement
  serve                     answer every (function, location) query through
                            the concurrent engine (--threads N workers)
  stats                     query/memo work counters
  dot FN                    Graphviz export of FN's DAIG (root context)
  help | quit"
    );
}
