//! `dai-repl` — an interactive front end for demanded abstract
//! interpretation, driving the paper's IDE scenario by hand: load a
//! program, demand abstract states at locations, edit statements, and
//! re-query with incremental reuse, watching the work counters.
//!
//! ```text
//! $ cargo run --bin dai-repl -- program.js            # interval domain
//! $ cargo run --bin dai-repl -- --domain octagon p.js
//! $ cargo run --bin dai-repl -- --threads 4 p.js      # engine worker pool
//! dai> help
//! dai> list
//! dai> cfg main
//! dai> query main l3
//! dai> relabel main e2 x = x + 10
//! dai> splice main e4 if (x > 0) { y = 1; }
//! dai> save session.daip
//! dai> load session.daip
//! dai> serve
//! dai> listen tcp:127.0.0.1:7777
//! dai> connect tcp:127.0.0.1:7777
//! dai> stats
//! dai> dot main
//! dai> quit
//! ```
//!
//! `serve` routes the current program through the concurrent `dai-engine`:
//! a session is opened from source (edit history replayed), every
//! function's location sweep is submitted as **one coalesced query batch**
//! (a single session-lock acquisition and one union demanded-cone
//! evaluation per function), answers are drained and printed (sorted),
//! and the engine's own statistics follow. By default
//! the engine analyzes intraprocedurally per function (calls havoc); with
//! `--resolver interproc` the engine sessions resolve calls by demanding
//! callee exits under the REPL's context policy, so `serve` answers match
//! `queryall`.
//!
//! `listen ADDR` binds the same engine behind `dai-rpc`'s socket server,
//! and `connect ADDR` runs the identical sweep against a remote engine
//! through the typed socket client — the sweep code is one function over
//! the `dai_engine::Service` trait, so the two paths cannot drift.
//!
//! `save PATH` persists the session — original source text plus the edit
//! history — through `dai-persist`; `load PATH` replays such a snapshot
//! (any snapshot the engine wrote works too: the REPL uses the required
//! session header and lets the warm sections lapse, which is sound —
//! caches rebuild on demand).
//!
//! Commands read from stdin, one per line; results go to stdout (errors to
//! stderr, which keeps piped sessions scriptable — the integration tests
//! drive the binary exactly that way).

use dai_core::dot::{to_dot, DotOptions};
use dai_core::driver::ProgramEdit;
use dai_core::interproc::{ContextPolicy, InterAnalyzer};
use dai_core::strategy::FixStrategy;
use dai_core::{Context, TransferMode};
use dai_domains::{
    AbstractDomain, ConstDomain, IntervalDomain, OctagonDomain, ShapeDomain, SignDomain,
};
use dai_engine::{Engine, EngineConfig, ResolverChoice, Service};
use dai_lang::cfg::lower_program;
use dai_lang::{EdgeId, Loc, Symbol};
use dai_persist::{read_snapshot_file, write_snapshot_file, PersistDomain, SessionImage};
use dai_rpc::{Addr, Client, ClientOptions, Replica, Router, Server, ServerConfig};
use std::io::{BufRead, Write};
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut domain = "interval".to_string();
    let mut policy = ContextPolicy::CallString(1);
    let mut threads: usize = 1;
    let mut interproc_serve = false;
    let mut transfer = TransferMode::default();
    let mut path: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--domain" => {
                i += 1;
                domain = args.get(i).cloned().unwrap_or_default();
            }
            "--insensitive" => policy = ContextPolicy::Insensitive,
            "--call-strings" => {
                i += 1;
                let k: usize = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--call-strings needs a number"));
                policy = ContextPolicy::CallString(k);
            }
            "--threads" => {
                i += 1;
                threads = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .filter(|&n| n >= 1)
                    .unwrap_or_else(|| die("--threads needs a positive number"));
            }
            "--resolver" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("intra") => interproc_serve = false,
                    Some("interproc") => interproc_serve = true,
                    _ => die("--resolver takes intra|interproc"),
                }
            }
            "--transfer" => {
                i += 1;
                transfer = args
                    .get(i)
                    .and_then(|s| TransferMode::parse(s))
                    .unwrap_or_else(|| die("--transfer takes compiled|interp"));
            }
            "--help" | "-h" => {
                println!(
                    "usage: dai-repl [--domain interval|octagon|sign|const|shape] \
                     [--insensitive | --call-strings K] [--threads N] \
                     [--resolver intra|interproc] [--transfer compiled|interp] FILE"
                );
                return;
            }
            other => path = Some(other.to_string()),
        }
        i += 1;
    }
    let Some(path) = path else {
        die("missing program file (try --help)")
    };
    let src =
        std::fs::read_to_string(&path).unwrap_or_else(|e| die(&format!("cannot read {path}: {e}")));
    match domain.as_str() {
        "interval" => repl(
            &src,
            policy,
            threads,
            interproc_serve,
            transfer,
            IntervalDomain::top(),
        ),
        "octagon" => repl(
            &src,
            policy,
            threads,
            interproc_serve,
            transfer,
            OctagonDomain::top(),
        ),
        "sign" => repl(
            &src,
            policy,
            threads,
            interproc_serve,
            transfer,
            SignDomain::top(),
        ),
        "const" => repl(
            &src,
            policy,
            threads,
            interproc_serve,
            transfer,
            ConstDomain::top(),
        ),
        "shape" => repl(
            &src,
            policy,
            threads,
            interproc_serve,
            transfer,
            ShapeDomain::top_state(),
        ),
        other => die(&format!(
            "unknown domain `{other}` (interval|octagon|sign|const|shape)"
        )),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("dai-repl: {msg}");
    std::process::exit(2)
}

/// Parses `lNN` / `eNN` style identifiers.
fn parse_loc(s: &str) -> Option<Loc> {
    s.strip_prefix('l').and_then(|n| n.parse().ok()).map(Loc)
}

fn parse_edge(s: &str) -> Option<EdgeId> {
    s.strip_prefix('e').and_then(|n| n.parse().ok()).map(EdgeId)
}

/// The queryall-style sweep targets of `program`, sorted so the sweep
/// coalesces into exactly one batch per function.
fn sweep_targets(program: &dai_lang::cfg::LoweredProgram) -> Vec<(String, Loc)> {
    let mut targets: Vec<(String, Loc)> = Vec::new();
    for cfg in program.cfgs() {
        for loc in cfg.locs() {
            targets.push((cfg.name().to_string(), loc));
        }
    }
    targets.sort();
    targets
}

/// Splits a `listen`/`connect` argument line into the address and an
/// optional `--token TOKEN` (in either order). `None` when the address
/// is missing, a flag is unknown, or `--token` has no value.
fn split_addr_token(rest: &str) -> Option<(String, Option<String>)> {
    let mut addr = None;
    let mut token = None;
    let mut words = rest.split_whitespace();
    while let Some(word) = words.next() {
        if word == "--token" {
            token = Some(words.next()?.to_string());
        } else if word.starts_with("--") || addr.is_some() {
            return None;
        } else {
            addr = Some(word.to_string());
        }
    }
    addr.map(|a| (a, token))
}

/// `serve`/`connect`: route every (function, location) query of the
/// current program through a demanded-analysis [`Service`] — the
/// in-process engine or a remote socket client; the sweep logic cannot
/// tell the difference. A session is opened from source, the edit
/// history is replayed, the whole sweep goes out as **one** submission
/// (one coalesced batch per function — over the wire, a single sweep
/// frame), and the service's statistics follow.
fn sweep_via_service<D: PersistDomain>(
    service: &impl Service<D>,
    source: &str,
    history: &[ProgramEdit],
    targets: &[(String, Loc)],
) -> Result<dai_engine::EngineStats, String> {
    let session = service.open("repl", source).map_err(|e| e.to_string())?;
    for edit in history {
        service
            .edit(session, edit)
            .map_err(|e| format!("replaying edit: {e}"))?;
    }
    for ((f, loc), answer) in targets.iter().zip(service.query_sweep(session, targets)) {
        match answer {
            Ok(state) => println!("{f} {loc}: {state}"),
            Err(e) => eprintln!("{f} {loc}: sweep failed: {e}"),
        }
    }
    let s = service.stats().map_err(|e| e.to_string())?;
    println!(
        "service: {} workers, {} queries ({} coalesced into {} batches, {} locks); \
         {} computed, {} memo-matched, {} reused; memo {} hits / {} misses; \
         {} saves, {} loads",
        s.workers,
        s.queries,
        s.batch.coalesced_queries,
        s.batch.batches,
        s.session_locks,
        s.query_stats.computed,
        s.query_stats.memo_matched,
        s.query_stats.reused,
        s.memo.hits,
        s.memo.misses,
        s.saves,
        s.loads,
    );
    service.close(session).map_err(|e| e.to_string())?;
    Ok(s)
}

/// `explain`: serve an attributed sweep through a demanded-analysis
/// [`Service`] — local engine or remote client — on a throwaway session
/// (source + history replayed, exactly like the serve sweep).
fn explain_via_service<D: PersistDomain>(
    service: &impl Service<D>,
    source: &str,
    history: &[ProgramEdit],
    targets: &[(String, Loc)],
) -> Result<dai_engine::ExplainReport, String> {
    let session = service
        .open("repl-explain", source)
        .map_err(|e| e.to_string())?;
    for edit in history {
        service
            .edit(session, edit)
            .map_err(|e| format!("replaying edit: {e}"))?;
    }
    let report = service.explain(session, targets).map_err(|e| e.to_string());
    let _ = service.close(session);
    report
}

fn print_resolver_banner(what: &str, resolver: ResolverChoice) {
    match resolver {
        ResolverChoice::Intra => println!(
            "{what}: intraprocedural per-function analysis (calls havoc; \
             entry states are the domain's defaults)"
        ),
        ResolverChoice::Interproc { .. } => println!(
            "{what}: interprocedural analysis (calls demand callee exits; \
             answers match queryall)"
        ),
    }
}

/// The REPL's replayable session state: the analyzer plus what persistence
/// needs (original source, applied edits, construction parameters).
struct ReplSession<D: AbstractDomain> {
    analyzer: InterAnalyzer<D>,
    source: String,
    history: Vec<ProgramEdit>,
    policy: ContextPolicy,
    strategy: FixStrategy,
    transfer: TransferMode,
    entry: String,
    phi0: D,
}

impl<D: AbstractDomain> ReplSession<D> {
    fn open(
        source: &str,
        policy: ContextPolicy,
        strategy: FixStrategy,
        transfer: TransferMode,
        phi0: D,
    ) -> Result<ReplSession<D>, String> {
        let program = dai_lang::parse_program(source)
            .map_err(|e| e.to_string())
            .and_then(|p| lower_program(&p).map_err(|e| e.to_string()))?;
        let entry = program
            .entry_cfg()
            .ok_or_else(|| "program has no functions".to_string())?
            .name()
            .to_string();
        Ok(ReplSession {
            analyzer: InterAnalyzer::with_config(
                program,
                policy,
                &entry,
                phi0.clone(),
                strategy,
                transfer,
            ),
            source: source.to_string(),
            history: Vec::new(),
            policy,
            strategy,
            transfer,
            entry,
            phi0,
        })
    }

    /// Replays a persisted edit onto the analyzer (used by `load`).
    fn replay(&mut self, edit: &ProgramEdit) -> Result<(), String> {
        match edit {
            ProgramEdit::Relabel { func, edge, stmt } => self
                .analyzer
                .relabel(func.as_str(), *edge, stmt.clone())
                .map_err(|e| e.to_string())?,
            ProgramEdit::Insert { func, edge, block } => {
                self.analyzer
                    .splice(func.as_str(), *edge, block)
                    .map_err(|e| e.to_string())?;
            }
        }
        self.history.push(edit.clone());
        Ok(())
    }
}

impl<D: PersistDomain> ReplSession<D> {
    /// Persists source + edit history (a cold snapshot: the REPL's
    /// interprocedural units rebuild on demand after a load, which is
    /// sound — see `dai-persist`'s crate docs).
    fn save(&self, path: &str) -> Result<usize, String> {
        let image: SessionImage<D> = SessionImage {
            name: "repl".to_string(),
            domain: D::domain_tag(),
            strategy: self.strategy,
            policy: Some(self.policy),
            source: self.source.clone(),
            edits: self.history.clone(),
            funcs: Vec::new(),
            memo: Vec::new(),
        };
        let bytes = image.to_bytes();
        write_snapshot_file(path, &bytes).map_err(|e| e.to_string())?;
        Ok(bytes.len())
    }

    /// Restores a snapshot: parse the saved source, replay the saved edit
    /// history, and swap the rebuilt session in. Returns the replayed
    /// edit count and a note about dropped warm sections, if any.
    fn load(&mut self, path: &str) -> Result<(usize, String), String> {
        let bytes = read_snapshot_file(path).map_err(|e| e.to_string())?;
        let (image, report) = SessionImage::<D>::from_bytes(&bytes).map_err(|e| e.to_string())?;
        // The snapshot's semantics travel with it: replaying under a
        // different widening schedule or context-sensitivity policy would
        // compute different invariants than the saved session, so both
        // the saved strategy and the saved policy are honored (snapshots
        // from intraprocedural engine sessions carry no policy and adopt
        // the REPL's current one).
        let policy = image.policy.unwrap_or(self.policy);
        let mut fresh = ReplSession::open(
            &image.source,
            policy,
            image.strategy,
            self.transfer,
            self.phi0.clone(),
        )?;
        for edit in &image.edits {
            fresh
                .replay(edit)
                .map_err(|e| format!("replaying edit: {e}"))?;
        }
        let mut note = if report.is_warm() || report.is_lossy() {
            format!(" (warm sections not used by the repl: {report})")
        } else {
            String::new()
        };
        if policy != self.policy {
            note.push_str(&format!(
                " (session analyzes under its saved policy {policy:?}, \
                 not this repl's {:?})",
                self.policy
            ));
        }
        let edits = fresh.history.len();
        *self = fresh;
        Ok((edits, note))
    }
}

fn repl<D: PersistDomain>(
    src: &str,
    policy: ContextPolicy,
    threads: usize,
    interproc_serve: bool,
    transfer: TransferMode,
    phi0: D,
) {
    let mut session: ReplSession<D> =
        match ReplSession::open(src, policy, FixStrategy::PAPER, transfer, phi0) {
            Ok(s) => s,
            Err(e) => die(&e),
        };
    println!(
        "loaded {} function(s); entry `{}`; type `help`",
        session.analyzer.program().cfgs().len(),
        session.entry
    );
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    // Servers started by `listen`; kept alive (and serving) until quit.
    let mut servers: Vec<Server<D>> = Vec::new();
    // The engine stats of the most recent `serve`/`connect` sweep —
    // what `stats --json` reports.
    let mut last_engine_stats: Option<dai_engine::EngineStats> = None;
    // The connection of the most recent `connect`, kept open so `trace`
    // and `stats --json` address the remote engine.
    let mut remote: Option<Client<D>> = None;
    // The journaled engine of the most recent `journal PATH`, kept so
    // `journal status|compact` address it (and `listen` could serve it).
    let mut journaled: Option<Arc<Engine<D>>> = None;
    loop {
        print!("dai> ");
        let _ = out.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break, // EOF
            Ok(_) => {}
            Err(e) => die(&format!("stdin: {e}")),
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        // Derived per command: `load` may have swapped in a session with
        // a different saved policy, and `serve` must match the *current*
        // session's queryall answers.
        let serve_resolver = if interproc_serve {
            ResolverChoice::Interproc {
                policy: session.policy,
            }
        } else {
            ResolverChoice::Intra
        };
        let analyzer = &mut session.analyzer;
        match cmd {
            "quit" | "exit" => break,
            "help" => print_help(),
            "serve" => {
                print_resolver_banner("serve", serve_resolver);
                let engine: Engine<D> = Engine::with_config(EngineConfig {
                    workers: threads,
                    resolver: serve_resolver,
                    transfer: session.transfer,
                    ..EngineConfig::default()
                });
                let targets = sweep_targets(analyzer.program());
                match sweep_via_service(&engine, &session.source, &session.history, &targets) {
                    Ok(stats) => last_engine_stats = Some(stats),
                    Err(e) => eprintln!("serve failed: {e}"),
                }
            }
            "listen" => {
                let (addr, token) = match split_addr_token(rest) {
                    Some(parsed) => parsed,
                    None => {
                        eprintln!("usage: listen tcp:HOST:PORT | listen unix:PATH [--token TOKEN]");
                        continue;
                    }
                };
                // Serve the journaled engine when one is attached (so a
                // `follow` from another repl has a journal to pull);
                // otherwise a fresh engine.
                let engine: Arc<Engine<D>> = match &journaled {
                    Some(engine) => Arc::clone(engine),
                    None => Arc::new(Engine::with_config(EngineConfig {
                        workers: threads,
                        resolver: serve_resolver,
                        transfer: session.transfer,
                        ..EngineConfig::default()
                    })),
                };
                let authed = token.is_some();
                let config = ServerConfig { auth_token: token };
                match Addr::parse(&addr)
                    .map_err(std::io::Error::other)
                    .and_then(|addr| Server::bind_with(&addr, engine, config))
                {
                    Ok(server) => {
                        println!(
                            "listening on {} (domain {}, {} worker(s){}); \
                             `connect {}` from another repl",
                            server.addr(),
                            D::domain_tag(),
                            threads,
                            if authed { ", auth required" } else { "" },
                            server.addr(),
                        );
                        servers.push(server);
                    }
                    Err(e) => eprintln!("listen failed: {e}"),
                }
            }
            "connect" => {
                let (addr, token) = match split_addr_token(rest) {
                    Some(parsed) => parsed,
                    None => {
                        eprintln!(
                            "usage: connect tcp:HOST:PORT | connect unix:PATH [--token TOKEN]"
                        );
                        continue;
                    }
                };
                let connected = Addr::parse(&addr)
                    .map_err(|e| dai_engine::EngineError::Remote {
                        code: "transport",
                        message: e,
                    })
                    .and_then(|addr| {
                        Client::<D>::connect_with(
                            &addr,
                            ClientOptions {
                                auth: token,
                                ..ClientOptions::default()
                            },
                        )
                    });
                match connected {
                    Ok(client) => {
                        println!("connected to {addr} (domain {})", D::domain_tag());
                        let targets = sweep_targets(analyzer.program());
                        match sweep_via_service(
                            &client,
                            &session.source,
                            &session.history,
                            &targets,
                        ) {
                            Ok(stats) => last_engine_stats = Some(stats),
                            Err(e) => eprintln!("remote sweep failed: {e}"),
                        }
                        // Keep the connection: `trace …` now addresses the
                        // remote engine until the next connect or quit.
                        remote = Some(client);
                    }
                    Err(e) => eprintln!("connect failed: {e}"),
                }
            }
            "list" => {
                for cfg in analyzer.program().cfgs() {
                    println!(
                        "{}({}) — {} locations, {} edges{}",
                        cfg.name(),
                        cfg.params()
                            .iter()
                            .map(|p| p.to_string())
                            .collect::<Vec<_>>()
                            .join(", "),
                        cfg.loc_count(),
                        cfg.edge_count(),
                        if cfg.loop_heads().is_empty() {
                            String::new()
                        } else {
                            format!(", loop heads {:?}", cfg.loop_heads())
                        }
                    );
                }
            }
            "cfg" => match analyzer.program().by_name(rest.trim()) {
                Some(cfg) => print!("{}", dai_lang::pretty::cfg_to_string(cfg)),
                None => eprintln!("no function `{}`", rest.trim()),
            },
            "query" => {
                let mut parts = rest.split_whitespace();
                let (Some(f), Some(l)) = (parts.next(), parts.next()) else {
                    eprintln!("usage: query FN lNN");
                    continue;
                };
                let Some(loc) = parse_loc(l) else {
                    eprintln!("bad location `{l}` (use lNN)");
                    continue;
                };
                match analyzer.query_at(f, loc) {
                    Ok(results) if results.is_empty() => {
                        println!("{f} unreachable from `{}`: ⊥ at {loc}", session.entry);
                    }
                    Ok(results) => {
                        for (ctx, state) in results {
                            println!("[{ctx}] {state}");
                        }
                    }
                    Err(e) => eprintln!("query failed: {e}"),
                }
            }
            "queryall" => {
                let f = rest.trim();
                let Some(cfg) = analyzer.program().by_name(f).cloned() else {
                    eprintln!("no function `{f}`");
                    continue;
                };
                for loc in cfg.locs() {
                    match analyzer.query_joined(f, loc) {
                        Ok(state) => println!("{loc}: {state}"),
                        Err(e) => eprintln!("{loc}: query failed: {e}"),
                    }
                }
            }
            "deadcode" => {
                // A small analysis client: locations whose invariant is ⊥
                // in every calling context are unreachable.
                let f = rest.trim();
                let Some(cfg) = analyzer.program().by_name(f).cloned() else {
                    eprintln!("no function `{f}`");
                    continue;
                };
                let mut dead = Vec::new();
                for loc in cfg.locs() {
                    match analyzer.query_joined(f, loc) {
                        Ok(state) if state.is_bottom() => dead.push(loc),
                        Ok(_) => {}
                        Err(e) => eprintln!("{loc}: query failed: {e}"),
                    }
                }
                if dead.is_empty() {
                    println!("no unreachable locations in {f}");
                } else {
                    println!(
                        "unreachable: {}",
                        dead.iter()
                            .map(|l| l.to_string())
                            .collect::<Vec<_>>()
                            .join(" ")
                    );
                }
            }
            "relabel" => {
                let mut parts = rest.splitn(3, ' ');
                let (Some(f), Some(e), Some(stmt_src)) = (parts.next(), parts.next(), parts.next())
                else {
                    eprintln!("usage: relabel FN eNN STMT");
                    continue;
                };
                let Some(edge) = parse_edge(e) else {
                    eprintln!("bad edge `{e}` (use eNN)");
                    continue;
                };
                let block_src = format!("{};", stmt_src.trim_end_matches(';'));
                match dai_lang::parse_block(&block_src) {
                    Ok(block) if block.0.len() == 1 => {
                        let stmt = match &block.0[0] {
                            dai_lang::AstStmt::Simple(s) => s.clone(),
                            _ => {
                                eprintln!("relabel takes an atomic statement; use `splice` for control flow");
                                continue;
                            }
                        };
                        match analyzer.relabel(f, edge, stmt.clone()) {
                            Ok(()) => {
                                session.history.push(ProgramEdit::Relabel {
                                    func: Symbol::new(f),
                                    edge,
                                    stmt,
                                });
                                println!("ok");
                            }
                            Err(e) => eprintln!("relabel failed: {e}"),
                        }
                    }
                    Ok(_) => eprintln!("relabel takes exactly one statement"),
                    Err(e) => eprintln!("parse error: {e}"),
                }
            }
            "splice" => {
                let mut parts = rest.splitn(3, ' ');
                let (Some(f), Some(e), Some(block_src)) =
                    (parts.next(), parts.next(), parts.next())
                else {
                    eprintln!("usage: splice FN eNN BLOCK");
                    continue;
                };
                let Some(edge) = parse_edge(e) else {
                    eprintln!("bad edge `{e}` (use eNN)");
                    continue;
                };
                match dai_lang::parse_block(block_src) {
                    Ok(block) => match analyzer.splice(f, edge, &block) {
                        Ok(info) => {
                            session.history.push(ProgramEdit::Insert {
                                func: Symbol::new(f),
                                edge,
                                block,
                            });
                            println!(
                                "ok: +{} locations, +{} edges",
                                info.new_locs.len(),
                                info.new_edges.len()
                            );
                        }
                        Err(e) => eprintln!("splice failed: {e}"),
                    },
                    Err(e) => eprintln!("parse error: {e}"),
                }
            }
            "save" => {
                let path = rest.trim();
                if path.is_empty() {
                    eprintln!("usage: save PATH");
                    continue;
                }
                match session.save(path) {
                    Ok(bytes) => println!(
                        "saved {bytes} bytes to {path} (source + {} edit(s))",
                        session.history.len()
                    ),
                    Err(e) => eprintln!("save failed: {e}"),
                }
            }
            "load" => {
                let path = rest.trim();
                if path.is_empty() {
                    eprintln!("usage: load PATH");
                    continue;
                }
                match session.load(path) {
                    Ok((edits, note)) => println!(
                        "loaded {path}: {} function(s), {edits} edit(s) replayed; \
                         caches cold (recomputation on demand is sound){note}",
                        session.analyzer.program().cfgs().len()
                    ),
                    Err(e) => eprintln!("load failed: {e}"),
                }
            }
            "stats" if rest.trim() == "--json" => {
                // One JSON line of the full EngineStats of the most recent
                // `serve`/`connect` sweep (schema locked by tests/repl.rs).
                match &last_engine_stats {
                    Some(stats) => println!("{}", stats.to_json()),
                    None => eprintln!("no engine stats yet (run `serve` or `connect` first)"),
                }
            }
            "stats" => {
                let q = analyzer.stats();
                let m = analyzer.memo_stats();
                println!(
                    "queries: {} computed, {} memo-matched, {} reused, {} unrollings, {} fixed points",
                    q.computed, q.memo_matched, q.reused, q.unrolls, q.fix_converged
                );
                println!(
                    "memo: {} hits / {} misses ({:.0}% hit rate), {} insertions",
                    m.hits,
                    m.misses,
                    m.hit_rate() * 100.0,
                    m.insertions
                );
                println!("units: {} (function, context) DAIGs", analyzer.unit_count());
            }
            "explain" => {
                let mut json = false;
                let mut words: Vec<&str> = Vec::new();
                for tok in rest.split_whitespace() {
                    if tok == "--json" {
                        json = true;
                    } else {
                        words.push(tok);
                    }
                }
                let targets: Vec<(String, Loc)> = match words.as_slice() {
                    [] => sweep_targets(analyzer.program()),
                    [f] => match analyzer.program().by_name(f) {
                        Some(cfg) => cfg.locs().iter().map(|&l| (f.to_string(), l)).collect(),
                        None => {
                            eprintln!("no function `{f}`");
                            continue;
                        }
                    },
                    [f, l] => match parse_loc(l) {
                        Some(loc) => vec![(f.to_string(), loc)],
                        None => {
                            eprintln!("bad location `{l}` (use lNN)");
                            continue;
                        }
                    },
                    _ => {
                        eprintln!("usage: explain [--json] [FN [lNN]]");
                        continue;
                    }
                };
                // Remote after a `connect`, else a fresh local engine —
                // the same split as the serve sweep. The engine itself
                // rejects explain under the interprocedural resolver.
                let served = match remote.as_ref() {
                    Some(client) => {
                        explain_via_service(client, &session.source, &session.history, &targets)
                            .and_then(|report| {
                                client
                                    .stats()
                                    .map(|stats| (report, stats))
                                    .map_err(|e| e.to_string())
                            })
                    }
                    None => {
                        let engine: Engine<D> = Engine::with_config(EngineConfig {
                            workers: threads,
                            resolver: serve_resolver,
                            transfer: session.transfer,
                            ..EngineConfig::default()
                        });
                        explain_via_service(&engine, &session.source, &session.history, &targets)
                            .map(|report| {
                                let stats = engine.stats();
                                (report, stats)
                            })
                    }
                };
                match served {
                    Ok((report, stats)) => {
                        if json {
                            println!("{}", report.to_json(10));
                        } else {
                            print!("{}", report.render(10));
                        }
                        last_engine_stats = Some(stats);
                    }
                    Err(e) => eprintln!("explain failed: {e}"),
                }
            }
            "journal" => match rest.trim() {
                "" => eprintln!("usage: journal PATH | journal status | journal compact"),
                "status" => match &journaled {
                    Some(engine) => {
                        let r = engine.stats().replication;
                        println!(
                            "journal: attached, head seq {}, {} frame(s); \
                             applied seq {} ({} frame(s))",
                            r.journal_last_seq, r.journal_frames, r.applied_seq, r.applied_frames,
                        );
                    }
                    None => eprintln!("no journal attached (run `journal PATH` first)"),
                },
                "compact" => match &journaled {
                    Some(engine) => match engine.compact_journal(true) {
                        Ok(true) => {
                            let r = engine.stats().replication;
                            println!(
                                "compacted: journal now {} frame(s), head seq {}",
                                r.journal_frames, r.journal_last_seq
                            );
                        }
                        Ok(false) => println!("nothing to compact"),
                        Err(e) => eprintln!("compact failed: {e}"),
                    },
                    None => eprintln!("no journal attached (run `journal PATH` first)"),
                },
                path => {
                    // A journaled engine: recover whatever the file holds,
                    // then run the serve sweep through it — the open and
                    // replayed edits land in the journal as they happen.
                    let engine: Arc<Engine<D>> = Arc::new(Engine::with_config(EngineConfig {
                        workers: threads,
                        resolver: serve_resolver,
                        transfer: session.transfer,
                        ..EngineConfig::default()
                    }));
                    match engine.open_journal(path, dai_engine::JournalConfig::default()) {
                        Ok(recovery) => {
                            println!(
                                "journal {path}: {} entr{} replayed, head seq {}{}",
                                recovery.entries_replayed,
                                if recovery.entries_replayed == 1 {
                                    "y"
                                } else {
                                    "ies"
                                },
                                recovery.last_seq,
                                if recovery.damaged_len > 0 {
                                    format!(
                                        " ({} torn tail byte(s) truncated)",
                                        recovery.damaged_len
                                    )
                                } else {
                                    String::new()
                                },
                            );
                            match sweep_via_service(
                                engine.as_ref(),
                                &session.source,
                                &session.history,
                                &sweep_targets(analyzer.program()),
                            ) {
                                Ok(stats) => last_engine_stats = Some(stats),
                                Err(e) => eprintln!("journaled sweep failed: {e}"),
                            }
                            journaled = Some(engine);
                        }
                        Err(e) => eprintln!("journal {path} failed: {e}"),
                    }
                }
            },
            "follow" => {
                let addr = rest.trim();
                if addr.is_empty() {
                    eprintln!("usage: follow ADDR (a `listen` server with a journal)");
                    continue;
                }
                match Replica::<D>::connect(addr, threads) {
                    Ok(replica) => match replica.catch_up() {
                        Ok(applied) => {
                            let stats = replica.engine().stats();
                            println!(
                                "caught up with {addr}: {applied} entr{} applied, \
                                 seq {}, {} replica session(s) serving read-only",
                                if applied == 1 { "y" } else { "ies" },
                                replica.applied_seq(),
                                stats.sessions,
                            );
                            last_engine_stats = Some(stats);
                        }
                        Err(e) => eprintln!("catch-up failed: {e}"),
                    },
                    Err(e) => eprintln!("follow failed: {e}"),
                }
            }
            "route" => {
                let n: usize = match rest.trim().parse() {
                    Ok(n) if (1..=16).contains(&n) => n,
                    _ => {
                        eprintln!("usage: route N (1..=16 in-process shards)");
                        continue;
                    }
                };
                let backends: Vec<Arc<Engine<D>>> = (0..n)
                    .map(|_| {
                        Arc::new(Engine::with_config(EngineConfig {
                            workers: threads,
                            resolver: serve_resolver,
                            transfer: session.transfer,
                            ..EngineConfig::default()
                        }))
                    })
                    .collect();
                let router = Router::new(backends);
                match sweep_via_service(
                    &router,
                    &session.source,
                    &session.history,
                    &sweep_targets(analyzer.program()),
                ) {
                    Ok(stats) => {
                        let routed = router.routed_queries();
                        println!(
                            "routed per shard: {routed:?} (total {})",
                            routed.iter().sum::<u64>()
                        );
                        last_engine_stats = Some(stats);
                    }
                    Err(e) => eprintln!("routed sweep failed: {e}"),
                }
            }
            "trace" => {
                if let Err(e) =
                    trace_command(rest.trim(), remote.as_ref(), last_engine_stats.as_ref())
                {
                    eprintln!("{e}");
                }
            }
            "dot" => {
                let f = rest.trim();
                match analyzer.unit(f, &Context::root()) {
                    Some(unit) => {
                        let opts = DotOptions {
                            title: Some(format!("{f} under ε")),
                            ..DotOptions::default()
                        };
                        print!("{}", to_dot(unit.daig(), &opts));
                    }
                    None => eprintln!("no DAIG for `{f}` in the root context yet (query it first)"),
                }
            }
            other => eprintln!("unknown command `{other}` (try `help`)"),
        }
    }
}

/// The `trace on|off|dump PATH|metrics` command. With a live `connect`
/// client the ops address the *remote* engine's recorder over the wire;
/// otherwise they act on this process's recorder.
fn trace_command<D: PersistDomain>(
    args: &str,
    remote: Option<&Client<D>>,
    last_engine_stats: Option<&dai_engine::EngineStats>,
) -> Result<(), String> {
    let side = if remote.is_some() { "remote" } else { "local" };
    let (sub, rest) = args.split_once(' ').unwrap_or((args, ""));
    match sub {
        "on" | "off" => {
            let enable = sub == "on";
            match remote {
                Some(client) => client
                    .trace(if enable {
                        dai_engine::TraceOp::Enable
                    } else {
                        dai_engine::TraceOp::Disable
                    })
                    .map(|_| ())
                    .map_err(|e| e.to_string())?,
                None => dai_trace::config().set_enabled(enable),
            }
            if enable && !dai_trace::TraceConfig::probes_compiled() && remote.is_none() {
                eprintln!("note: this build has trace probes compiled out (no-default-features)");
            }
            println!(
                "tracing {} ({side})",
                if enable { "enabled" } else { "disabled" }
            );
            Ok(())
        }
        "dump" => {
            let path = rest.trim();
            if path.is_empty() {
                return Err(
                    "usage: trace dump PATH (.json for Chrome trace_event, else binary)"
                        .to_string(),
                );
            }
            let dump = match remote {
                Some(client) => client.trace_dump().map_err(|e| e.to_string())?,
                None => dai_trace::drain(),
            };
            let (bytes, format) = if path.ends_with(".json") {
                (
                    dai_trace::chrome_trace_json(&dump).into_bytes(),
                    "chrome trace_event JSON (chrome://tracing, perfetto.dev)",
                )
            } else {
                (
                    dai_persist::encode_trace_frame(&dump),
                    "binary trace frame (dai_persist::decode_trace_frame)",
                )
            };
            std::fs::write(path, &bytes).map_err(|e| format!("cannot write {path}: {e}"))?;
            println!(
                "dumped {} record(s) from {} thread(s) ({} dropped) to {path} — {format}",
                dump.records.len(),
                dump.threads.len(),
                dump.dropped,
            );
            Ok(())
        }
        "metrics" => {
            let text = match remote {
                Some(client) => client.metrics().map_err(|e| e.to_string())?,
                None => {
                    // The server publishes its live stats into the gauges
                    // before rendering; locally the engine from the last
                    // `serve` is gone, so publish its retained stats.
                    if let Some(stats) = last_engine_stats {
                        stats.publish_metrics();
                    }
                    dai_trace::metrics().render_prometheus()
                }
            };
            print!("{text}");
            Ok(())
        }
        _ => Err("usage: trace on|off|dump PATH|metrics".to_string()),
    }
}

fn print_help() {
    println!(
        "commands:
  list                      functions, sizes, loop heads
  cfg FN                    print FN's control-flow graph
  query FN lNN              abstract state at a location, per context
  queryall FN               abstract states at every location (joined)
  deadcode FN               locations proven unreachable (⊥ invariant)
  relabel FN eNN STMT       replace the statement on an edge
  splice FN eNN BLOCK       insert a block before an edge's statement
  save PATH                 persist the session (source + edit history)
  load PATH                 restore a saved session (replays the history)
  serve                     answer every (function, location) query through
                            the concurrent engine (--threads N workers,
                            --resolver intra|interproc)
  listen ADDR [--token T]   serve a fresh engine over a socket (ADDR is
                            tcp:HOST:PORT or unix:PATH); runs until quit;
                            --token requires clients to present T
  connect ADDR [--token T]  run the serve sweep against a remote engine
                            through the dai-rpc socket client (the server's
                            domain must match --domain; --token presents an
                            auth token)
  journal PATH              attach an append-only journal (recovering its
                            clean prefix first), then run the serve sweep
                            through the journaled engine
  journal status            head/applied sequence numbers of that journal
  journal compact           fold the journal into one snapshot per session
  follow ADDR               replicate a journaled `listen` server: pull its
                            journal, apply it into a read-only follower,
                            report the catch-up
  route N                   run the serve sweep through a session-sharding
                            router over N in-process engines, reporting the
                            per-shard routed-query fan-out
  stats                     query/memo work counters
  stats --json              last serve/connect engine stats, one JSON line
  explain [--json] [FN [lNN]]
                            serve the sweep (whole program, one function,
                            or one location) with per-cell cost attribution:
                            outcome/wall per cell, fixpoint iterations,
                            work/span parallelism, lock wait vs. held
                            (remote after a connect; needs --resolver intra)
  trace on|off              flip runtime trace recording (remote after a
                            connect, else this process)
  trace dump PATH           drain the trace (.json: Chrome trace_event for
                            chrome://tracing; otherwise binary frame)
  trace metrics             Prometheus text exposition of the metrics registry
  dot FN                    Graphviz export of FN's DAIG (root context)
  help | quit"
    );
}
