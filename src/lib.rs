//! # dai — Demanded Abstract Interpretation, in Rust
//!
//! Umbrella crate for the reproduction of *Demanded Abstract
//! Interpretation* (Stein, Chang, Sridharan — PLDI 2021). Re-exports the
//! workspace crates:
//!
//! * [`lang`] (`dai-lang`) — the subject language: AST, parser,
//!   control-flow graphs, concrete semantics, program edits;
//! * [`domains`] (`dai-domains`) — interval, octagon, and separation-logic
//!   shape abstract domains;
//! * [`memo`] (`dai-memo`) — the auxiliary memoization table `M`;
//! * [`core`] (`dai-core`) — demanded abstract interpretation graphs:
//!   construction, query/edit semantics, demanded unrolling,
//!   interprocedural contexts, and the four analysis configurations;
//! * [`bench`](mod@bench) (`dai-bench`) — the paper's evaluation workloads and
//!   harnesses.
//!
//! See the repository README for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results. The
//! `examples/` directory contains nine runnable walkthroughs, starting
//! with `cargo run --example quickstart`.

pub use dai_bench as bench;
pub use dai_core as core;
pub use dai_domains as domains;
pub use dai_lang as lang;
pub use dai_memo as memo;
