//! # dai — Demanded Abstract Interpretation, in Rust
//!
//! Umbrella crate for the reproduction of *Demanded Abstract
//! Interpretation* (Stein, Chang, Sridharan — PLDI 2021). Re-exports the
//! workspace crates:
//!
//! * [`lang`] (`dai-lang`) — the subject language: AST, parser,
//!   control-flow graphs, concrete semantics, program edits;
//! * [`domains`] (`dai-domains`) — interval, octagon, and separation-logic
//!   shape abstract domains;
//! * [`memo`] (`dai-memo`) — the auxiliary memoization table `M`;
//! * [`core`] (`dai-core`) — demanded abstract interpretation graphs:
//!   construction, query/edit semantics, demanded unrolling,
//!   interprocedural contexts, and the four analysis configurations;
//! * [`engine`] (`dai-engine`) — the concurrent, multi-session analysis
//!   engine (see below);
//! * [`bench`](mod@bench) (`dai-bench`) — the paper's evaluation workloads and
//!   harnesses.
//!
//! See the repository README for a guided tour, `DESIGN.md` for the system
//! inventory, and `EXPERIMENTS.md` for paper-vs-measured results. The
//! `examples/` directory contains runnable walkthroughs, starting with
//! `cargo run --example quickstart` (and `engine_concurrent` for the
//! engine).
//!
//! # Architecture: the engine
//!
//! `dai-engine` grows the single-threaded library into a long-lived
//! service. Its layering, bottom to top:
//!
//! ```text
//!   requests:  Query{func,loc} · Edit(ProgramEdit) · Snapshot · Stats
//!      │                (engine::Engine — request stream, tickets)
//!      ▼
//!   sessions:  Mutex<Session> per client — a LoweredProgram plus one
//!              FuncAnalysis (CFG + DAIG) per function, built on demand
//!      │                (session::Session — serialize per session,
//!      ▼                 parallel across sessions)
//!   scheduler: the demanded cone of a query, evaluated topologically:
//!              ready cells (all inputs filled) fan out to the worker
//!              pool; fix edges unroll on the scheduling thread
//!      │                (scheduler::evaluate_targets)
//!      ▼
//!   substrate: collect_ready / apply_ready / fix_step and the
//!              ready-frontier notion (dai-core)  +  SharedMemoTable
//!              (dai-memo): sharded, lock-per-shard, shared by all
//!              sessions
//! ```
//!
//! Three properties make this a faithful extension of the paper rather
//! than a bolt-on:
//!
//! 1. **Acyclicity ⇒ parallelism.** Cells on the ready frontier never
//!    read each other (Definition 4.1), so evaluating them concurrently
//!    is sound and *confluent*: every schedule produces the same cell
//!    values.
//! 2. **One evaluation function.** Workers apply the exact
//!    `dai_core::apply_ready` the sequential evaluator uses, so engine
//!    answers are bit-identical to sequential answers — and therefore to
//!    the from-scratch batch oracle (Theorem 6.1). The
//!    `engine_consistency` suite enforces this for 1..=8 workers over
//!    randomized edit/query interleavings.
//! 3. **Content-addressed sharing.** The shared memo table is keyed by
//!    hashes of computation inputs (paper §2.1, "names are hashes,
//!    essentially"), so cross-session and cross-thread reuse can only
//!    ever substitute equal values, and dropping entries under capacity
//!    pressure is always sound (§2.2).
//!
//! Throughput baselines live in `BENCH_engine.json` (recorded by
//! `cargo run --release --bin engine_scaling -- --out BENCH_engine.json`);
//! each baseline embeds `host_cpus`, since worker scaling is bounded by
//! the hardware the baseline was taken on.

pub use dai_bench as bench;
pub use dai_core as core;
pub use dai_domains as domains;
pub use dai_engine as engine;
pub use dai_lang as lang;
pub use dai_memo as memo;
